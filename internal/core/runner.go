package core

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// asyncDeliver is installed on a Graph by a running Runner; when set,
// emissions are enqueued to per-node inboxes instead of propagated by
// direct call.
type asyncDeliver func(n *Node, port int, s Sample)

// Runner executes a graph asynchronously: one goroutine per component
// consuming a bounded inbox, and one goroutine per Producer source
// stepping it until exhaustion. This is the engine used for live
// pipelines; deterministic runs use Graph.Run instead.
//
// The graph structure is frozen while the runner is active.
type Runner struct {
	g        *Graph
	interval time.Duration
	inboxCap int
	observer RunnerObserver
	gate     DeliveryGate
	timer    NodeTimer
	restart  *RestartPolicy

	mu      sync.Mutex
	started bool
	cancel  context.CancelFunc

	inboxes  map[*Node]chan message
	doneCh   chan struct{}  // closed by Stop to end node goroutines
	inflight sync.WaitGroup // tracks queued but unprocessed messages
	workers  sync.WaitGroup // node goroutines
	sources  sync.WaitGroup // producer goroutines
}

type message struct {
	port int
	s    Sample
}

// RunnerObserver receives engine-level health signals from a running
// Runner: the outcome of every component process/step and source
// lifecycle transitions. Implementations must be safe for concurrent
// use — callbacks run on node and source goroutines. A nil observer
// costs nothing; this is the seam internal/health hangs its per-node
// error/panic accounting on.
type RunnerObserver interface {
	// NodeResult reports the outcome of one process or step on the
	// node: err is nil on success and wraps ErrPanicked when the
	// component panicked.
	NodeResult(nodeID string, err error)
	// SourceExhausted reports that a producer's goroutine is exiting
	// for good (clean end of data, or restarts exhausted).
	SourceExhausted(nodeID string)
	// SourceRestarted reports a successful Restart of a failed source
	// (attempt counts consecutive restarts since the last success).
	SourceRestarted(nodeID string, attempt int)
}

// DeliveryGate is an optional RunnerObserver extension: when the
// observer implements it, the runner consults Allow before delivering
// each queued sample, letting a circuit breaker quarantine a
// persistently failing node. Gated-off samples are dropped (still
// counted as handled, so backpressure keeps draining) — positioning
// data is perishable, and a wedged component must not stall siblings.
type DeliveryGate interface {
	Allow(nodeID string) bool
}

// NodeTimer is an optional RunnerObserver extension: when the observer
// implements it, the runner wall-clocks every component process and
// source step and reports the duration alongside the outcome. The two
// time.Now calls per message are only paid when a timer is installed;
// a plain observer keeps the old cost.
type NodeTimer interface {
	NodeTimed(nodeID string, d time.Duration, err error)
}

// Restartable is implemented by source components that can recover
// from a failure — re-open a socket, re-acquire a device. The runner's
// restart policy calls Restart after a source dies with an error;
// a Restart error means "still down, keep backing off".
type Restartable interface {
	Restart() error
}

// RestartPolicy bounds the runner's restart-with-exponential-backoff
// loop for Restartable sources that died with an error (Step returned
// more=false and a non-nil error). Clean exhaustion never restarts.
type RestartPolicy struct {
	// MaxRestarts caps consecutive restart attempts; <= 0 means
	// unlimited (the backoff cap bounds the retry rate).
	MaxRestarts int
	// Base is the first backoff delay (default 20ms).
	Base time.Duration
	// Max caps the backoff (default 2s).
	Max time.Duration
	// Multiplier grows the backoff per attempt (default 2).
	Multiplier float64
}

// withDefaults fills zero fields.
func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.Base <= 0 {
		p.Base = 20 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// delay returns the backoff before restart attempt n (1-based).
func (p RestartPolicy) delay(attempt int) time.Duration {
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			return p.Max
		}
	}
	if d > float64(p.Max) {
		return p.Max
	}
	return time.Duration(d)
}

// RunnerOption configures a Runner.
type RunnerOption func(*Runner)

// WithRunnerObserver installs a health observer (and, when it also
// implements DeliveryGate, a delivery gate) on the runner.
func WithRunnerObserver(o RunnerObserver) RunnerOption {
	return func(r *Runner) { r.observer = o }
}

// WithSourceRestart enables restart-with-exponential-backoff for
// Restartable sources that die with an error.
func WithSourceRestart(p RestartPolicy) RunnerOption {
	return func(r *Runner) {
		pp := p.withDefaults()
		r.restart = &pp
	}
}

// WithSourceInterval makes producer sources step at the given period
// instead of free-running (live-pipeline pacing).
func WithSourceInterval(d time.Duration) RunnerOption {
	return func(r *Runner) { r.interval = d }
}

// WithInboxCapacity sets each node's inbox depth (default 1). Depth 1
// gives the tightest backpressure; deeper inboxes absorb fan-in bursts —
// what a session runtime multiplexing many producers needs to keep
// upstream components from stalling on a briefly-busy consumer.
func WithInboxCapacity(n int) RunnerOption {
	return func(r *Runner) {
		if n > 0 {
			r.inboxCap = n
		}
	}
}

// NewRunner returns a runner for g.
func NewRunner(g *Graph, opts ...RunnerOption) *Runner {
	r := &Runner{g: g, inboxCap: 1}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// Start freezes the graph and launches the node and source goroutines.
// It returns once everything is running.
func (r *Runner) Start(ctx context.Context) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return fmt.Errorf("runner: %w", ErrRunning)
	}

	ctx, cancel := context.WithCancel(ctx)
	r.cancel = cancel

	nodes := r.g.Nodes()
	r.inboxes = make(map[*Node]chan message, len(nodes))
	for _, n := range nodes {
		// Bounded inboxes: enqueue blocks when the consumer lags,
		// giving natural backpressure along the (acyclic) tree.
		r.inboxes[n] = make(chan message, r.inboxCap)
	}

	r.g.setAsync(func(n *Node, port int, s Sample) {
		r.inflight.Add(1)
		r.inboxes[n] <- message{port: port, s: s}
	})

	if r.observer != nil {
		if g, ok := r.observer.(DeliveryGate); ok {
			r.gate = g
		}
		if t, ok := r.observer.(NodeTimer); ok {
			r.timer = t
		}
	}

	done := make(chan struct{})
	for _, n := range nodes {
		n := n
		inbox := r.inboxes[n]
		r.workers.Add(1)
		go func() {
			defer r.workers.Done()
			for {
				select {
				case m := <-inbox:
					r.handle(n, m)
					r.inflight.Done()
				case <-done:
					// Drain anything that raced with shutdown.
					for {
						select {
						case m := <-inbox:
							r.handle(n, m)
							r.inflight.Done()
						default:
							return
						}
					}
				}
			}
		}()
	}
	r.doneCh = done

	for _, n := range nodes {
		if _, ok := n.comp.(Producer); !ok {
			continue
		}
		n := n
		r.sources.Add(1)
		go func() {
			defer r.sources.Done()
			r.driveSource(ctx, n)
		}()
	}

	r.started = true
	return nil
}

// handle delivers one queued sample to a node, applying the delivery
// gate and reporting the outcome to the observer.
func (r *Runner) handle(n *Node, m message) {
	if r.gate != nil && !r.gate.Allow(n.ID()) {
		return
	}
	var start time.Time
	if r.timer != nil {
		start = time.Now()
	}
	err := n.process(m.port, m.s)
	if r.timer != nil {
		r.timer.NodeTimed(n.ID(), time.Since(start), err)
	}
	if err != nil {
		r.g.noteError(err)
	}
	if r.observer != nil {
		r.observer.NodeResult(n.ID(), err)
	}
}

// driveSource steps one producer until exhaustion, restarting failed
// Restartable sources with exponential backoff when a restart policy
// is installed.
func (r *Runner) driveSource(ctx context.Context, n *Node) {
	var ticker *time.Ticker
	if r.interval > 0 {
		ticker = time.NewTicker(r.interval)
		defer ticker.Stop()
	}
	// Backoff timer, created on first use and reused across restarts.
	// time.After in the backoff select would leak a timer (and its
	// goroutine-visible allocation) per restart attempt until it fires:
	// when ctx wins the race the timer keeps running for the full delay.
	var backoff *time.Timer
	defer func() {
		if backoff != nil {
			backoff.Stop()
		}
	}()
	attempt := 0
	for {
		select {
		case <-ctx.Done():
			return
		default:
		}
		var start time.Time
		if r.timer != nil {
			start = time.Now()
		}
		more, err := n.step()
		if r.timer != nil {
			r.timer.NodeTimed(n.ID(), time.Since(start), err)
		}
		if err != nil {
			r.g.noteError(err)
		}
		if r.observer != nil {
			r.observer.NodeResult(n.ID(), err)
		}
		if !more {
			rc, restartable := n.comp.(Restartable)
			if err == nil || !restartable || r.restart == nil {
				// Clean exhaustion, or nothing to restart: done.
				if r.observer != nil {
					r.observer.SourceExhausted(n.ID())
				}
				return
			}
			attempt++
			if r.restart.MaxRestarts > 0 && attempt > r.restart.MaxRestarts {
				if r.observer != nil {
					r.observer.SourceExhausted(n.ID())
				}
				return
			}
			if backoff == nil {
				backoff = time.NewTimer(r.restart.delay(attempt))
			} else {
				// The timer is always drained here or stopped by the
				// deferred Stop, so Reset is safe without a racy drain.
				backoff.Reset(r.restart.delay(attempt))
			}
			select {
			case <-ctx.Done():
				return
			case <-backoff.C:
			}
			if rerr := rc.Restart(); rerr != nil {
				// Still down: keep backing off. The failure is reported
				// to the observer but not accumulated in the graph's
				// error buffer — a long outage is state, not new news.
				if r.observer != nil {
					r.observer.NodeResult(n.ID(), fmt.Errorf("source %q: restart: %w", n.ID(), rerr))
				}
				continue
			}
			if r.observer != nil {
				r.observer.SourceRestarted(n.ID(), attempt)
			}
			attempt = 0
			continue
		}
		attempt = 0
		if ticker != nil {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
		}
	}
}

// Stop halts the sources, waits for all in-flight samples to drain,
// stops the node goroutines and unfreezes the graph. It returns any
// errors collected during the run.
func (r *Runner) Stop() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.started {
		return nil
	}
	r.cancel()
	r.sources.Wait()
	r.inflight.Wait()
	close(r.doneCh)
	r.workers.Wait()
	r.g.setAsync(nil)
	r.started = false
	return r.g.drainErrors()
}

// WaitSources blocks until every producer source is exhausted (or
// stopped via context), then drains in-flight samples. The runner keeps
// accepting injected samples until Stop is called.
func (r *Runner) WaitSources() {
	r.sources.Wait()
	r.inflight.Wait()
}
