package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// recordingBatchTap records every delivery, distinguishing per-event
// Tap calls from TapBatch runs, with a switchable NeedsSync answer.
type recordingBatchTap struct {
	mu      sync.Mutex
	taps    []TapEvent // individual Tap calls
	batches [][]TapEvent
	sync    func(string, Sample) bool
}

func (r *recordingBatchTap) Tap(id string, s Sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.taps = append(r.taps, TapEvent{ComponentID: id, Sample: s})
}

func (r *recordingBatchTap) TapBatch(events []TapEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.batches = append(r.batches, append([]TapEvent(nil), events...))
}

func (r *recordingBatchTap) NeedsSync(id string, s Sample) bool {
	if r.sync == nil {
		return false
	}
	return r.sync(id, s)
}

// all returns every recorded event in delivery order, flattening
// batches.
func (r *recordingBatchTap) all() []TapEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []TapEvent
	out = append(out, r.taps...)
	for _, b := range r.batches {
		out = append(out, b...)
	}
	return out
}

func TestBatchTapOutsideBurst(t *testing.T) {
	g, _ := buildLinear(t, 3)
	bt := &recordingBatchTap{}
	cancel := g.TapBatch(bt)
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	// No burst: every emission arrives via per-event Tap, none batched.
	if len(bt.batches) != 0 {
		t.Errorf("got %d batches outside a burst, want 0", len(bt.batches))
	}
	if len(bt.taps) != 6 { // 3 source emissions + 3 mid emissions
		t.Errorf("got %d tap events, want 6", len(bt.taps))
	}
	cancel()
	g2, _ := buildLinear(t, 1)
	_ = g2 // cancel on a different graph's tap must not panic
}

func TestBatchTapCancel(t *testing.T) {
	g, _ := buildLinear(t, 2)
	bt := &recordingBatchTap{}
	cancel := g.TapBatch(bt)
	cancel()
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if n := len(bt.all()); n != 0 {
		t.Errorf("cancelled tap still received %d events", n)
	}
}

func TestBurstBuffersUntilEnd(t *testing.T) {
	g, sink := buildLinear(t, 4)
	bt := &recordingBatchTap{}
	g.TapBatch(bt)

	b := g.BeginBurst(0)
	if b == nil {
		t.Fatal("BeginBurst returned nil with a batch tap registered")
	}
	for i := 0; i < 4; i++ {
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
		// Nothing may reach the batch tap while the burst is open.
		if n := len(bt.all()); n != 0 {
			t.Fatalf("step %d: %d events delivered before End", i, n)
		}
	}
	b.End()

	if len(bt.batches) != 1 {
		t.Fatalf("got %d batches, want 1", len(bt.batches))
	}
	events := bt.batches[0]
	if len(events) != 8 { // (src + mid) x 4 steps, emission order
		t.Fatalf("batch has %d events, want 8", len(events))
	}
	// Emission order within the batch: src then mid, per step.
	for i := 0; i < 8; i += 2 {
		if events[i].ComponentID != "src" || events[i+1].ComponentID != "mid" {
			t.Fatalf("events %d,%d = %s,%s; want src,mid",
				i, i+1, events[i].ComponentID, events[i+1].ComponentID)
		}
	}
	// Propagation itself was not deferred: the sink saw everything
	// during the burst.
	if got := len(sink.Received()); got != 4 {
		t.Errorf("sink received %d, want 4", got)
	}
}

func TestBurstBatchTapBeforePlainTap(t *testing.T) {
	g, _ := buildLinear(t, 1)
	var order []string
	bt := &recordingBatchTap{}
	g.TapBatch(bt)
	g.TapBatch(&orderTap{name: "batch", order: &order})
	g.Tap(func(id string, s Sample) { order = append(order, "plain") })

	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) < 2 || order[0] != "batch" || order[1] != "plain" {
		t.Errorf("delivery order = %v, want batch before plain", order)
	}
}

// orderTap appends its name to a shared slice on each Tap.
type orderTap struct {
	name  string
	order *[]string
}

func (o *orderTap) Tap(string, Sample) { *o.order = append(*o.order, o.name) }
func (o *orderTap) TapBatch(events []TapEvent) {
	for range events {
		*o.order = append(*o.order, o.name)
	}
}
func (o *orderTap) NeedsSync(string, Sample) bool { return false }

func TestBeginBurstNil(t *testing.T) {
	g, _ := buildLinear(t, 1)
	// No batch taps registered.
	if b := g.BeginBurst(0); b != nil {
		t.Error("BeginBurst without batch taps should return nil")
	}
	// Nil-safety of every method.
	var b *Burst
	b.FlushIfStale()
	b.End()

	g.TapBatch(&recordingBatchTap{})
	b1 := g.BeginBurst(0)
	if b1 == nil {
		t.Fatal("BeginBurst returned nil")
	}
	// A second burst while one is open is refused.
	if b2 := g.BeginBurst(0); b2 != nil {
		t.Error("nested BeginBurst should return nil")
	}
	b1.End()
	// After End a new burst opens again.
	if b3 := g.BeginBurst(0); b3 == nil {
		t.Error("BeginBurst after End should succeed")
	} else {
		b3.End()
	}
}

func TestBeginBurstRefusedWhileAsyncRunning(t *testing.T) {
	g, _ := buildLinear(t, 3)
	g.TapBatch(&recordingBatchTap{})
	r := NewRunner(g)
	if err := r.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if b := g.BeginBurst(0); b != nil {
		b.End()
		t.Error("BeginBurst should refuse while the async engine runs")
	}
}

func TestBurstNeedsSyncFlushesAndDeliversInOrder(t *testing.T) {
	g, _ := buildLinear(t, 3)
	var order []string
	bt := &recordingBatchTap{
		// Demand sync delivery for mid emissions only.
		sync: func(id string, _ Sample) bool { return id == "mid" },
	}
	g.TapBatch(bt)
	g.TapBatch(&orderTap{name: "x", order: &order})

	b := g.BeginBurst(0)
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	// src buffered; mid triggered a sync flush: first the buffered src
	// event via TapBatch, then mid via Tap.
	if len(bt.batches) != 1 || len(bt.batches[0]) != 1 || bt.batches[0][0].ComponentID != "src" {
		t.Fatalf("batches = %+v, want one [src]", bt.batches)
	}
	if len(bt.taps) != 1 || bt.taps[0].ComponentID != "mid" {
		t.Fatalf("sync taps = %+v, want [mid]", bt.taps)
	}
	b.End()
}

func TestBurstFlushesAtCapacity(t *testing.T) {
	g, _ := buildLinear(t, burstMaxEvents) // 2 events per step
	bt := &recordingBatchTap{}
	g.TapBatch(bt)
	b := g.BeginBurst(0)
	for i := 0; i < burstMaxEvents/2; i++ { // exactly burstMaxEvents emissions
		if _, err := g.StepAll(); err != nil {
			t.Fatal(err)
		}
	}
	if len(bt.batches) != 1 {
		t.Fatalf("got %d batches before End, want 1 (capacity flush)", len(bt.batches))
	}
	if n := len(bt.batches[0]); n != burstMaxEvents {
		t.Errorf("capacity batch has %d events, want %d", n, burstMaxEvents)
	}
	b.End()
}

func TestFlushIfStaleBoundsLatency(t *testing.T) {
	g, _ := buildLinear(t, 2)
	bt := &recordingBatchTap{}
	g.TapBatch(bt)

	b := g.BeginBurst(time.Nanosecond) // any wait exceeds the deadline
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	b.FlushIfStale()
	if len(bt.batches) != 1 {
		t.Fatalf("FlushIfStale did not flush a stale buffer")
	}

	// A long deadline does not flush.
	if _, err := g.StepAll(); err != nil {
		t.Fatal(err)
	}
	b.flushAfter = time.Hour
	b.FlushIfStale()
	if len(bt.batches) != 1 {
		t.Error("FlushIfStale flushed before the deadline")
	}
	b.End()
	if len(bt.batches) != 2 {
		t.Error("End did not flush the remaining events")
	}
}

// TestBurstReuse pins the Burst recycling path: ending a burst and
// opening the next one reuses the same object and its buffer.
func TestBurstReuse(t *testing.T) {
	g, _ := buildLinear(t, 1)
	g.TapBatch(&recordingBatchTap{})
	b1 := g.BeginBurst(0)
	b1.End()
	b2 := g.BeginBurst(0)
	defer b2.End()
	if b1 != b2 {
		t.Error("BeginBurst did not reuse the ended burst")
	}
}

// fakePooled implements PooledPayload for the helper tests.
type fakePooled struct {
	retains, releases int
	detached          bool
}

func (f *fakePooled) Retain()           { f.retains++ }
func (f *fakePooled) Release()          { f.releases++ }
func (f *fakePooled) DetachPayload() any { f.detached = true; return "detached" }

func TestPooledPayloadHelpers(t *testing.T) {
	f := &fakePooled{}
	RetainPayload(f)
	if f.retains != 1 {
		t.Errorf("retains = %d, want 1", f.retains)
	}
	ReleasePayload(f)
	if f.releases != 1 {
		t.Errorf("releases = %d, want 1", f.releases)
	}
	if got := DetachPayload(f); got != "detached" {
		t.Errorf("DetachPayload = %v, want detached", got)
	}
	// Non-pooled payloads pass through untouched.
	RetainPayload("plain")
	ReleasePayload(42)
	if got := DetachPayload("plain"); got != "plain" {
		t.Errorf("DetachPayload(plain) = %v", got)
	}
	if got := DetachPayload(nil); got != nil {
		t.Errorf("DetachPayload(nil) = %v", got)
	}
}

func TestSampleDetachDetachesPayload(t *testing.T) {
	f := &fakePooled{}
	s := NewSample(kindRaw, f, time.Now())
	d := s.Detach()
	if !f.detached {
		t.Error("Sample.Detach did not detach the pooled payload")
	}
	if d.Payload != "detached" {
		t.Errorf("detached payload = %v", d.Payload)
	}
}

func TestSinkDetachesPooledPayloads(t *testing.T) {
	g := New()
	f := &fakePooled{}
	src := &SliceSource{
		CompID:  "src",
		Out:     OutputSpec{Kind: kindRaw},
		Samples: []Sample{NewSample(kindRaw, f, time.Now())},
	}
	if _, err := g.Add(src); err != nil {
		t.Fatal(err)
	}
	sink := NewSink("app", []Kind{kindRaw})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("src", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got := sink.Received()
	if len(got) != 1 {
		t.Fatalf("sink received %d", len(got))
	}
	if got[0].Payload != "detached" {
		t.Errorf("sink retained pooled payload %v, want detached form", got[0].Payload)
	}
}

var _ = fmt.Sprintf // keep fmt for debugging edits
