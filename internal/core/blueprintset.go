package core

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by BlueprintSet operations.
var (
	// ErrUnknownRevision indicates a revision number the set does not
	// hold.
	ErrUnknownRevision = errors.New("core: unknown blueprint revision")
)

// BlueprintSet is a named, append-only sequence of immutable blueprint
// revisions — the paper's adaptation story (§3) lifted from one live
// graph to a fleet definition. Individual blueprints stay frozen
// forever (the PR 2 contract); evolution happens by appending a new
// revision and migrating live instances across the structural diff
// between two revisions (see DiffBlueprints / MigrationPlan).
//
// Revisions are numbered from 1 in Add order. Add freezes the
// blueprint, so every revision in a set is immutable and safe to share;
// all methods are safe for concurrent use.
type BlueprintSet struct {
	name string

	mu    sync.Mutex
	revs  []*Blueprint
	plans map[[2]int]*MigrationPlan
}

// NewBlueprintSet returns an empty set for the named pipeline.
func NewBlueprintSet(name string) *BlueprintSet {
	return &BlueprintSet{name: name, plans: make(map[[2]int]*MigrationPlan)}
}

// Name returns the pipeline name the revisions describe.
func (s *BlueprintSet) Name() string { return s.name }

// Add appends bp as the next revision, freezing it, and returns its
// revision number (1-based).
func (s *BlueprintSet) Add(bp *Blueprint) (int, error) {
	if bp == nil {
		return 0, fmt.Errorf("%w: nil blueprint", ErrInvalidSpec)
	}
	bp.freeze()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revs = append(s.revs, bp)
	return len(s.revs), nil
}

// Revision returns revision n (1-based).
func (s *BlueprintSet) Revision(n int) (*Blueprint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 || n > len(s.revs) {
		return nil, fmt.Errorf("%w: %s@%d (have 1..%d)", ErrUnknownRevision, s.name, n, len(s.revs))
	}
	return s.revs[n-1], nil
}

// Latest returns the highest revision number (0 for an empty set).
func (s *BlueprintSet) Latest() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.revs)
}

// Diff returns the structural diff from revision `from` to revision
// `to`.
func (s *BlueprintSet) Diff(from, to int) (*BlueprintDiff, error) {
	p, err := s.Plan(from, to)
	if err != nil {
		return nil, err
	}
	return p.Diff, nil
}

// Plan returns the migration plan mapping a live instance of revision
// `from` onto revision `to`. Plans are immutable and cached per
// (from, to) pair, so a fleet rollout computes the diff once.
func (s *BlueprintSet) Plan(from, to int) (*MigrationPlan, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.revs)
	if from < 1 || from > n {
		return nil, fmt.Errorf("%w: %s@%d (have 1..%d)", ErrUnknownRevision, s.name, from, n)
	}
	if to < 1 || to > n {
		return nil, fmt.Errorf("%w: %s@%d (have 1..%d)", ErrUnknownRevision, s.name, to, n)
	}
	key := [2]int{from, to}
	if p, ok := s.plans[key]; ok {
		return p, nil
	}
	p := PlanMigration(s.revs[from-1], s.revs[to-1])
	s.plans[key] = p
	return p, nil
}

// Migrate maps a live, quiescent graph instantiated from revision
// `from` onto revision `to` by applying the cached migration plan (see
// MigrationPlan.Apply for the state-carry and failure semantics). The
// opts are the same per-instance overrides the graph was instantiated
// with — use WithOptionalOverride for slots that exist in only some
// revisions.
func (s *BlueprintSet) Migrate(g *Graph, from, to int, opts ...InstantiateOption) error {
	p, err := s.Plan(from, to)
	if err != nil {
		return err
	}
	return p.Apply(g, opts...)
}
