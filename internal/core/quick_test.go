package core

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// buildChain constructs a linear pipeline of `depth` pass-through
// transforms between a source with n samples and a sink.
func buildChain(t *testing.T, depth, n int) (*Graph, *Sink) {
	t.Helper()
	g := New()
	mustAdd(t, g, source("src", n))
	prev := "src"
	prevKind := kindRaw
	for i := 0; i < depth; i++ {
		id := fmt.Sprintf("t%d", i)
		kind := Kind(fmt.Sprintf("k%d", i))
		mustAdd(t, g, passthrough(id, prevKind, kind))
		if err := g.Connect(prev, id, 0); err != nil {
			t.Fatal(err)
		}
		prev = id
		prevKind = kind
	}
	sink := NewSink("app", []Kind{prevKind})
	mustAdd(t, g, sink)
	if err := g.Connect(prev, "app", 0); err != nil {
		t.Fatal(err)
	}
	return g, sink
}

// TestPropertyPipelineDelivery: for any depth and sample count, a
// linear pipeline delivers every sample exactly once and in order.
func TestPropertyPipelineDelivery(t *testing.T) {
	f := func(depthRaw, nRaw uint8) bool {
		depth := int(depthRaw%6) + 1
		n := int(nRaw%40) + 1
		g, sink := buildChain(t, depth, n)
		if _, err := g.Run(0); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		got := sink.Received()
		if len(got) != n {
			t.Logf("depth=%d n=%d delivered=%d", depth, n, len(got))
			return false
		}
		for i, s := range got {
			if s.Payload.(int) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLogicalTimeInvariants: along any linear pipeline, every
// component's emissions carry logical times 1..n, and every span is
// well-formed (From <= To, Source is the actual upstream).
func TestPropertyLogicalTimeInvariants(t *testing.T) {
	f := func(depthRaw, nRaw uint8) bool {
		depth := int(depthRaw%5) + 1
		n := int(nRaw%30) + 1
		g, _ := buildChain(t, depth, n)

		lastLogical := map[string]LogicalTime{}
		ok := true
		cancel := g.Tap(func(id string, s Sample) {
			if s.Logical != lastLogical[id]+1 {
				t.Logf("%s logical %d after %d", id, s.Logical, lastLogical[id])
				ok = false
			}
			lastLogical[id] = s.Logical
			for _, span := range s.Spans {
				if span.From > span.To || span.Source == "" || span.Source == id {
					t.Logf("%s malformed span %v", id, span)
					ok = false
				}
			}
			if id == "src" && len(s.Spans) != 0 {
				t.Logf("source emitted spans %v", s.Spans)
				ok = false
			}
			if id != "src" && len(s.Spans) == 0 {
				t.Logf("%s emitted without spans", id)
				ok = false
			}
		})
		defer cancel()

		if _, err := g.Run(0); err != nil {
			return false
		}
		// Pass-through components emit once per input: all clocks agree.
		for id, last := range lastLogical {
			if last != LogicalTime(n) {
				t.Logf("%s final clock %d, want %d", id, last, n)
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySpanContiguity: a batching component's consecutive
// emissions carry contiguous, non-overlapping spans that cover the
// entire input sequence.
func TestPropertySpanContiguity(t *testing.T) {
	f := func(nRaw, batchRaw uint8) bool {
		n := int(nRaw%60) + 2
		batch := int(batchRaw%5) + 1
		g := New()
		mustAdd(t, g, source("src", n))
		var count int
		batcher := &FuncComponent{
			CompID: "batch",
			CompSpec: Spec{
				Inputs: []PortSpec{{Name: "in", Accepts: []Kind{kindRaw}}},
				Output: OutputSpec{Kind: kindPos},
			},
			Fn: func(_ int, in Sample, emit Emit) error {
				count++
				if count%batch == 0 {
					emit(NewSample(kindPos, count, in.Time))
				}
				return nil
			},
		}
		mustAdd(t, g, batcher)
		sink := NewSink("app", []Kind{kindPos})
		mustAdd(t, g, sink)
		if err := g.Connect("src", "batch", 0); err != nil {
			return false
		}
		if err := g.Connect("batch", "app", 0); err != nil {
			return false
		}
		if _, err := g.Run(0); err != nil {
			return false
		}

		var next LogicalTime = 1
		for _, s := range sink.Received() {
			if len(s.Spans) != 1 {
				return false
			}
			span := s.Spans[0]
			if span.From != next {
				t.Logf("span %v does not continue at %d", span, next)
				return false
			}
			if span.To-span.From+1 != LogicalTime(batch) {
				t.Logf("span %v covers %d inputs, want %d", span, span.To-span.From+1, batch)
				return false
			}
			next = span.To + 1
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyInsertRemoveRoundTrip: splicing a pass-through component
// into any edge and removing it again restores equivalent behaviour.
func TestPropertyInsertRemoveRoundTrip(t *testing.T) {
	f := func(depthRaw, posRaw uint8) bool {
		depth := int(depthRaw%4) + 2
		g, sink := buildChain(t, depth, 3)

		// Pick an edge to splice into.
		edges := g.Edges()
		e := edges[int(posRaw)%len(edges)]
		toNode, _ := g.Node(e.To)
		inKind := toNode.Spec().Inputs[e.Port].Accepts[0]
		extra := passthrough("spliced", inKind, inKind)

		if err := g.InsertBetween(extra, e.From, e.To, e.Port, 0); err != nil {
			t.Logf("insert: %v", err)
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("validate after insert: %v", err)
			return false
		}
		// Remove it and restore the original edge.
		if err := g.Remove("spliced"); err != nil {
			return false
		}
		if err := g.Connect(e.From, e.To, e.Port); err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			t.Logf("validate after remove: %v", err)
			return false
		}
		if _, err := g.Run(0); err != nil {
			return false
		}
		return sink.Len() == 3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertySampleAttrsImmutable: WithAttr never mutates the
// original sample's attribute map.
func TestPropertySampleAttrsImmutable(t *testing.T) {
	f := func(k1, k2 string, v1, v2 int) bool {
		if k1 == "" || k2 == "" || k1 == k2 {
			return true
		}
		base := NewSample(kindRaw, 0, time.Time{}).WithAttr(k1, v1)
		derived := base.WithAttr(k2, v2)
		if _, ok := base.Attr(k2); ok {
			return false
		}
		got1, ok1 := derived.IntAttr(k1)
		got2, ok2 := derived.IntAttr(k2)
		return ok1 && ok2 && got1 == v1 && got2 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
