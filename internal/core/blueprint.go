package core

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by Blueprint operations.
var (
	// ErrBlueprintFrozen indicates a structural edit after the first
	// instantiation.
	ErrBlueprintFrozen = errors.New("core: blueprint is frozen after first instantiation")
	// ErrOverrideRequired indicates a placeholder component that was not
	// supplied a factory at instantiation time.
	ErrOverrideRequired = errors.New("core: blueprint component requires an override factory")
	// ErrUnknownOverride indicates an override for a component ID the
	// blueprint does not declare.
	ErrUnknownOverride = errors.New("core: override for unknown blueprint component")
)

// ComponentFactory creates a fresh Processing Component instance under
// the given ID. Factories are invoked once per Blueprint instantiation
// and must be safe for concurrent use: a shared blueprint may be
// instantiated from many goroutines at once (one pipeline instance per
// tracked target). Shared immutable dependencies (building model,
// fingerprint database) are captured by closure; mutable per-run state
// must live inside the returned component.
type ComponentFactory func(id string) Component

// FeatureFactory creates a fresh Component Feature instance. Like
// ComponentFactory it runs once per instantiation and must be safe for
// concurrent use.
type FeatureFactory func() Feature

type blueprintComponent struct {
	id      string
	factory ComponentFactory // nil marks a placeholder requiring an override
	tag     string           // identity tag for revision diffing ("" = factory identity)
}

type blueprintFeature struct {
	component string
	factory   FeatureFactory
	tag       string // identity tag for revision diffing ("" = factory identity)
}

// Blueprint is the immutable structure of a positioning pipeline:
// component slots, wiring and attached features, without any running
// state. It separates what §2.1 declares once (the pipeline definition,
// whether hand-wired, configured or dependency-resolved) from the live
// Graph instances executing it — one blueprint, many independent
// instances.
//
// A blueprint is built with AddComponent/Connect/AttachFeature and
// freezes permanently on the first Instantiate or Validate call; from
// then on it is safe to share across goroutines.
type Blueprint struct {
	mu     sync.Mutex
	frozen bool
	comps  []blueprintComponent
	index  map[string]int
	conns  []Edge
	feats  []blueprintFeature
}

// NewBlueprint returns an empty blueprint.
func NewBlueprint() *Blueprint {
	return &Blueprint{index: make(map[string]int)}
}

// AddComponent declares a component slot. A nil factory declares a
// placeholder — typically a sensor bound to per-target hardware or the
// application sink — that every Instantiate call must fill with
// WithComponentOverride.
func (b *Blueprint) AddComponent(id string, factory ComponentFactory) error {
	if id == "" {
		return fmt.Errorf("%w: empty component id", ErrInvalidSpec)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.frozen {
		return ErrBlueprintFrozen
	}
	if _, exists := b.index[id]; exists {
		return fmt.Errorf("%w: %q", ErrDuplicateID, id)
	}
	b.index[id] = len(b.comps)
	b.comps = append(b.comps, blueprintComponent{id: id, factory: factory})
	return nil
}

// TagComponent sets the identity tag DiffBlueprints uses to decide
// whether two revisions' slots hold "the same" component. Untagged
// slots compare by factory code identity, which distinguishes any two
// distinct function literals; tags let blueprints built through a
// registry (where every slot shares one generic closure) or across
// separately constructed revisions declare identity explicitly. Two
// slots with the same non-empty tag are considered unchanged even when
// their factories differ — the operator's contract that their state is
// compatible.
func (b *Blueprint) TagComponent(id, tag string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.frozen {
		return ErrBlueprintFrozen
	}
	i, ok := b.index[id]
	if !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, id)
	}
	b.comps[i].tag = tag
	return nil
}

// Connect declares an edge from from's output to input port port of to.
// Kind and feature compatibility are validated at instantiation time,
// when component specs exist; here only the referenced slots and basic
// port occupancy are checked.
func (b *Blueprint) Connect(from, to string, port int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.frozen {
		return ErrBlueprintFrozen
	}
	if _, ok := b.index[from]; !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, from)
	}
	if _, ok := b.index[to]; !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, to)
	}
	if port < 0 {
		return fmt.Errorf("%w: %q port %d", ErrPortIndex, to, port)
	}
	for _, e := range b.conns {
		if e.To == to && e.Port == port {
			return fmt.Errorf("%w: %q port %d", ErrPortBusy, to, port)
		}
	}
	b.conns = append(b.conns, Edge{From: from, To: to, Port: port})
	return nil
}

// AttachFeature declares a Component Feature on a component slot. A
// fresh feature instance is created for every pipeline instance.
func (b *Blueprint) AttachFeature(componentID string, factory FeatureFactory) error {
	return b.AttachTaggedFeature(componentID, "", factory)
}

// AttachTaggedFeature is AttachFeature with an explicit identity tag
// for revision diffing (see TagComponent for the tag semantics).
func (b *Blueprint) AttachTaggedFeature(componentID, tag string, factory FeatureFactory) error {
	if factory == nil {
		return fmt.Errorf("%w: nil feature factory for %q", ErrInvalidSpec, componentID)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.frozen {
		return ErrBlueprintFrozen
	}
	if _, ok := b.index[componentID]; !ok {
		return fmt.Errorf("%w: component %q", ErrNotFound, componentID)
	}
	b.feats = append(b.feats, blueprintFeature{component: componentID, factory: factory, tag: tag})
	return nil
}

// Components returns the declared component IDs in declaration order.
func (b *Blueprint) Components() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.comps))
	for i, c := range b.comps {
		out[i] = c.id
	}
	return out
}

// Connections returns the declared edges in declaration order.
func (b *Blueprint) Connections() []Edge {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Edge, len(b.conns))
	copy(out, b.conns)
	return out
}

// Placeholders returns the IDs of components that need an override
// factory at instantiation time, in declaration order.
func (b *Blueprint) Placeholders() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, c := range b.comps {
		if c.factory == nil {
			out = append(out, c.id)
		}
	}
	return out
}

// InstantiateOption configures one Instantiate call.
type InstantiateOption func(*instantiateConfig)

type instantiateConfig struct {
	overrides map[string]ComponentFactory
	optional  map[string]ComponentFactory
}

// WithComponentOverride substitutes the factory for one component slot
// in this instantiation only — how a shared blueprint is bound to
// per-target sensors and sinks.
func WithComponentOverride(id string, factory ComponentFactory) InstantiateOption {
	return func(c *instantiateConfig) {
		if c.overrides == nil {
			c.overrides = make(map[string]ComponentFactory)
		}
		c.overrides[id] = factory
	}
}

// WithOptionalOverride is WithComponentOverride for a slot the
// blueprint may not declare: unknown IDs are silently ignored instead
// of failing with ErrUnknownOverride. This is how one per-session
// override set serves every revision in a BlueprintSet — a "wifi"
// sensor binding is supplied unconditionally but only takes effect on
// revisions that declare the slot. WithComponentOverride wins when both
// name the same slot.
func WithOptionalOverride(id string, factory ComponentFactory) InstantiateOption {
	return func(c *instantiateConfig) {
		if c.optional == nil {
			c.optional = make(map[string]ComponentFactory)
		}
		c.optional[id] = factory
	}
}

// factoryFor resolves the effective factory for a slot: a required
// override wins, then an optional override, then the declared factory
// (nil for an unbound placeholder).
func (c *instantiateConfig) factoryFor(bc blueprintComponent) ComponentFactory {
	if f, ok := c.overrides[bc.id]; ok {
		return f
	}
	if f, ok := c.optional[bc.id]; ok {
		return f
	}
	return bc.factory
}

// freeze marks the blueprint immutable and returns stable references to
// its definition slices (never mutated once frozen).
func (b *Blueprint) freeze() ([]blueprintComponent, []Edge, []blueprintFeature, map[string]int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frozen = true
	return b.comps, b.conns, b.feats, b.index
}

// Instantiate builds a fresh, independent Graph from the blueprint:
// every component and feature factory runs anew, so no running state is
// shared between instances. The first call freezes the blueprint;
// afterwards Instantiate is safe to call concurrently.
func (b *Blueprint) Instantiate(opts ...InstantiateOption) (*Graph, error) {
	var cfg instantiateConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	comps, conns, feats, index := b.freeze()
	for id := range cfg.overrides {
		if _, ok := index[id]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownOverride, id)
		}
	}

	g := New()
	if err := buildInto(g, comps, conns, feats, &cfg); err != nil {
		return nil, err
	}
	return g, nil
}

// buildInto materializes a frozen blueprint definition into g — the
// shared body of Instantiate and the migration rollback path, which
// rebuilds a prior revision into a live (quiescent) graph.
func buildInto(g *Graph, comps []blueprintComponent, conns []Edge, feats []blueprintFeature, cfg *instantiateConfig) error {
	for _, c := range comps {
		factory := cfg.factoryFor(c)
		if factory == nil {
			return fmt.Errorf("%w: %q", ErrOverrideRequired, c.id)
		}
		comp := factory(c.id)
		if comp == nil {
			return fmt.Errorf("%w: factory for %q returned nil", ErrInvalidSpec, c.id)
		}
		if comp.ID() != c.id {
			return fmt.Errorf("%w: factory for %q returned component %q",
				ErrInvalidSpec, c.id, comp.ID())
		}
		if _, err := g.Add(comp); err != nil {
			return fmt.Errorf("blueprint: add %q: %w", c.id, err)
		}
	}
	// Features before connections: connection validation may require
	// capabilities the features provide.
	for _, f := range feats {
		node, _ := g.Node(f.component)
		if err := node.AttachFeature(f.factory()); err != nil {
			return fmt.Errorf("blueprint: attach feature to %q: %w", f.component, err)
		}
	}
	for _, e := range conns {
		if err := g.Connect(e.From, e.To, e.Port); err != nil {
			return fmt.Errorf("blueprint: connect %s -> %s:%d: %w", e.From, e.To, e.Port, err)
		}
	}
	return nil
}

// Validate instantiates a probe instance (with the given overrides for
// placeholders) and runs Graph.Validate on it, proving the blueprint's
// factories and wiring are sound. Like Instantiate it freezes the
// blueprint.
func (b *Blueprint) Validate(opts ...InstantiateOption) error {
	g, err := b.Instantiate(opts...)
	if err != nil {
		return err
	}
	return g.Validate()
}
