package core

import (
	"encoding/json"
	"sync"
)

// FuncComponent adapts a plain function into a Processing Component.
// It is the quickest way to write small transform steps and test
// fixtures.
type FuncComponent struct {
	CompID   string
	CompSpec Spec
	// Fn handles one input sample. A nil Fn forwards samples unchanged
	// (kind rewritten to the output kind).
	Fn func(port int, in Sample, emit Emit) error
}

var _ Component = (*FuncComponent)(nil)

// ID implements Component.
func (f *FuncComponent) ID() string { return f.CompID }

// Spec implements Component.
func (f *FuncComponent) Spec() Spec { return f.CompSpec }

// Process implements Component.
func (f *FuncComponent) Process(port int, in Sample, emit Emit) error {
	if f.Fn == nil {
		out := in
		out.Kind = f.CompSpec.Output.Kind
		emit(out)
		return nil
	}
	return f.Fn(port, in, emit)
}

// NewTransform returns a single-input single-output component that
// applies fn to each payload. fn returning keep=false drops the sample.
func NewTransform(id string, accepts, produces Kind, fn func(in Sample) (Sample, bool)) *FuncComponent {
	return &FuncComponent{
		CompID: id,
		CompSpec: Spec{
			Name:   id,
			Inputs: []PortSpec{{Name: "in", Accepts: []Kind{accepts}}},
			Output: OutputSpec{Kind: produces},
		},
		Fn: func(_ int, in Sample, emit Emit) error {
			out, keep := fn(in)
			if !keep {
				return nil
			}
			out.Kind = produces
			emit(out)
			return nil
		},
	}
}

// NewFilter returns a component that forwards samples of the given kind
// only when pred returns true — the shape of the §3.1 satellite filter.
func NewFilter(id string, kind Kind, pred func(in Sample) bool) *FuncComponent {
	return NewTransform(id, kind, kind, func(in Sample) (Sample, bool) {
		return in, pred(in)
	})
}

// Sink is the application root of the processing tree: it records
// delivered samples and invokes an optional callback. Sink is safe for
// concurrent use so it works under the async engine.
type Sink struct {
	id       string
	accepts  []Kind
	features []string // AcceptsFeatures for the single input port
	keep     int      // max samples retained (ring); 0 = unbounded

	mu       sync.Mutex
	received []Sample
	start    int // ring head (oldest) once keep is reached
	onSample func(Sample)
}

var _ Component = (*Sink)(nil)

// SinkOption configures a Sink.
type SinkOption func(*Sink)

// WithCallback invokes fn for every delivered sample (after recording).
func WithCallback(fn func(Sample)) SinkOption {
	return func(s *Sink) { s.onSample = fn }
}

// WithAcceptedFeatures makes the sink's input port accept data emitted
// by the named Component Features.
func WithAcceptedFeatures(names ...string) SinkOption {
	return func(s *Sink) { s.features = names }
}

// WithKeep bounds the sink's recording to the n most recent samples
// (ring semantics). Without it the sink records everything, which grows
// without limit — fine for tests and short replays, wrong for sinks on
// a long-running hot path.
func WithKeep(n int) SinkOption {
	return func(s *Sink) {
		if n > 0 {
			s.keep = n
		}
	}
}

// NewSink returns an application sink accepting the given kinds
// (defaults to every kind when none is given).
func NewSink(id string, accepts []Kind, opts ...SinkOption) *Sink {
	if len(accepts) == 0 {
		accepts = []Kind{KindAny}
	}
	s := &Sink{id: id, accepts: accepts}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// ID implements Component.
func (s *Sink) ID() string { return s.id }

// Spec implements Component.
func (s *Sink) Spec() Spec {
	return Spec{
		Name: s.id,
		Inputs: []PortSpec{{
			Name:            "in",
			Accepts:         s.accepts,
			AcceptsFeatures: s.features,
		}},
	}
}

// Process implements Component.
func (s *Sink) Process(_ int, in Sample, _ Emit) error {
	// The sink retains samples past this delivery and hands them to
	// application callbacks, so pooled payloads leave the pool's
	// ownership domain here.
	in.Payload = DetachPayload(in.Payload)
	s.mu.Lock()
	if s.keep > 0 && len(s.received) >= s.keep {
		s.received[s.start] = in
		s.start++
		if s.start == len(s.received) {
			s.start = 0
		}
	} else {
		s.received = append(s.received, in)
	}
	cb := s.onSample
	s.mu.Unlock()
	if cb != nil {
		cb(in)
	}
	return nil
}

// Received returns a copy of the recorded samples in delivery order
// (all of them, or the most recent WithKeep window).
func (s *Sink) Received() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, len(s.received))
	out = append(out, s.received[s.start:]...)
	out = append(out, s.received[:s.start]...)
	return out
}

// Last returns the most recently delivered sample, if any.
func (s *Sink) Last() (Sample, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.received)
	if n == 0 {
		return Sample{}, false
	}
	return s.received[(s.start+n-1)%n], true
}

// Len returns the number of delivered samples.
func (s *Sink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.received)
}

// Reset clears the recorded samples.
func (s *Sink) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.received = s.received[:0]
	s.start = 0
}

// SliceSource is a Producer that emits a fixed sequence of samples, one
// per engine tick — the test-fixture equivalent of the paper's emulator
// component.
type SliceSource struct {
	CompID  string
	Out     OutputSpec
	Samples []Sample
	next    int
}

var _ Producer = (*SliceSource)(nil)

// ID implements Component.
func (s *SliceSource) ID() string { return s.CompID }

// Spec implements Component.
func (s *SliceSource) Spec() Spec {
	return Spec{Name: s.CompID, Output: s.Out}
}

// Process implements Component; sources receive no input.
func (s *SliceSource) Process(int, Sample, Emit) error { return nil }

// Step implements Producer.
func (s *SliceSource) Step(emit Emit) (bool, error) {
	if s.next >= len(s.Samples) {
		return false, nil
	}
	emit(s.Samples[s.next])
	s.next++
	return s.next < len(s.Samples), nil
}

// MarshalState implements StateAccess: the replay position, so a
// restored source continues where the checkpoint was taken.
func (s *SliceSource) MarshalState() ([]byte, error) {
	return json.Marshal(struct {
		Next int `json:"next"`
	}{s.next})
}

// UnmarshalState implements StateAccess.
func (s *SliceSource) UnmarshalState(data []byte) error {
	var st struct {
		Next int `json:"next"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.next = st.Next
	return nil
}
