package core

import "time"

// Batched tap delivery (DESIGN.md §13). The synchronous saturated
// drivers (runtime StepN, replay, cluster pump rounds) emit samples in
// tight bursts; per-emission tap delivery then pays one lock
// acquisition and one observer update per sample inside the channel
// layer and metrics. A Burst buffers tap events on the emitting
// goroutine and hands the whole run to BatchTap observers in one call,
// amortising their internal locking across the burst. Plain TapFuncs
// are never deferred — only observers that explicitly implement
// BatchTap participate.

// TapEvent is one buffered emission: the component that emitted and the
// sample as stamped at emission time.
type TapEvent struct {
	ComponentID string
	Sample      Sample
}

// BatchTap is an emission observer that can absorb a burst of events in
// one call. Registered via Graph.TapBatch.
//
// Outside a burst, Tap is called per emission exactly like a TapFunc.
// Inside a burst, events accumulate and TapBatch receives them in
// emission order; NeedsSync is consulted before each event is buffered —
// returning true flushes everything buffered so far and delivers the
// current event synchronously via Tap, for observers whose downstream
// consumers must see the emission before propagation continues (e.g. an
// eager channel layer feeding Component Features).
type BatchTap interface {
	Tap(componentID string, s Sample)
	TapBatch(events []TapEvent)
	NeedsSync(componentID string, s Sample) bool
}

// TapBatch registers a batch-capable observer for every emission in the
// graph and returns a cancel function. Batch observers are notified
// before plain Tap observers on each emission (and receive buffered
// runs during bursts).
func (g *Graph) TapBatch(bt BatchTap) (cancel func()) {
	g.tapMu.Lock()
	defer g.tapMu.Unlock()
	id := g.batchID
	g.batchID++
	g.batchTaps[id] = bt
	g.rebuildBatchListLocked()
	return func() {
		g.tapMu.Lock()
		defer g.tapMu.Unlock()
		delete(g.batchTaps, id)
		g.rebuildBatchListLocked()
	}
}

// rebuildBatchListLocked snapshots batchTaps into batchList in
// registration order. Called with tapMu held.
func (g *Graph) rebuildBatchListLocked() {
	if len(g.batchTaps) == 0 {
		g.batchList.Store(nil)
		return
	}
	lst := make([]BatchTap, 0, len(g.batchTaps))
	for id := 0; id < g.batchID; id++ {
		if bt, ok := g.batchTaps[id]; ok {
			lst = append(lst, bt)
		}
	}
	g.batchList.Store(&lst)
}

// burstMaxEvents caps the buffered run so a long replay burst cannot
// grow the buffer (or the latency of the first buffered event) without
// bound. One source step emits ~8 samples, so 256 amortises ~32 steps.
const burstMaxEvents = 256

// burstStaleCheckMask throttles the time.Now() deadline probe to every
// 8th buffered event — a burst that stalls between appends is instead
// bounded by the driver calling FlushIfStale between steps.
const burstStaleCheckMask = 7

// Burst batches tap delivery for a run of synchronous emissions. It is
// owned by the goroutine driving propagation: BeginBurst, the emissions
// in between, FlushIfStale and End must all happen on that goroutine,
// and nothing else may propagate through the graph while a burst is
// active (the runtime guarantees this by holding its step lock).
type Burst struct {
	g          *Graph
	taps       []BatchTap // snapshot at BeginBurst
	events     []TapEvent
	flushAfter time.Duration // 0 = no deadline, flush on cap/End only
	lastFlush  time.Time
}

// BeginBurst opens a burst for the caller's upcoming run of synchronous
// emissions. flushAfter bounds how long an event may sit buffered
// (checked between appends and via FlushIfStale); pass 0 for pure
// throughput batching with no deadline.
//
// Returns nil — and buffering is skipped entirely — when the async
// engine is running (its delivery gates are per-message), when a burst
// is already active, or when no BatchTap observers are registered. All
// Burst methods are nil-safe, so callers use the result unconditionally.
func (g *Graph) BeginBurst(flushAfter time.Duration) *Burst {
	if g.running.Load() || g.burst.Load() != nil {
		return nil
	}
	lst := g.batchList.Load()
	if lst == nil {
		return nil
	}
	// Reuse the previous burst's allocation (and its events buffer
	// capacity): drivers open a burst per step batch, and a fresh
	// allocation each time would dominate the hot path this buffering
	// exists to cheapen.
	b := g.burstFree.Swap(nil)
	if b == nil {
		b = &Burst{}
	}
	b.g, b.taps, b.flushAfter = g, *lst, flushAfter
	if flushAfter > 0 {
		b.lastFlush = time.Now()
	}
	g.burst.Store(b)
	return b
}

// add buffers one emission, routing it synchronously instead when any
// batch tap demands it. Called by notifyTaps on the emitting goroutine.
func (b *Burst) add(componentID string, s Sample) {
	for _, bt := range b.taps {
		if bt.NeedsSync(componentID, s) {
			// Drain everything buffered so far, then deliver the current
			// event in order, synchronously, to every batch tap.
			b.flush()
			for _, t := range b.taps {
				t.Tap(componentID, s)
			}
			return
		}
	}
	b.events = append(b.events, TapEvent{ComponentID: componentID, Sample: s})
	if len(b.events) >= burstMaxEvents {
		b.flush()
		return
	}
	if b.flushAfter > 0 && len(b.events)&burstStaleCheckMask == 0 &&
		time.Since(b.lastFlush) >= b.flushAfter {
		b.flush()
	}
}

// flush hands the buffered run to every batch tap in emission order.
func (b *Burst) flush() {
	if b == nil || len(b.events) == 0 {
		return
	}
	for _, bt := range b.taps {
		bt.TapBatch(b.events)
	}
	// Keep the buffer's capacity for the next run. Entries are not
	// zeroed: samples only hold pooled or immutable payloads whose
	// lifetime is governed by refcounts, not by this buffer.
	b.events = b.events[:0]
	if b.flushAfter > 0 {
		b.lastFlush = time.Now()
	}
}

// FlushIfStale flushes the buffer when the flush deadline has passed.
// Drivers call it between source steps so a paced burst cannot hold an
// event longer than roughly flushAfter plus one step.
func (b *Burst) FlushIfStale() {
	if b == nil || b.flushAfter <= 0 || len(b.events) == 0 {
		return
	}
	if time.Since(b.lastFlush) >= b.flushAfter {
		b.flush()
	}
}

// End flushes any buffered events and closes the burst, restoring
// per-emission delivery.
func (b *Burst) End() {
	if b == nil {
		return
	}
	b.flush()
	g := b.g
	b.g, b.taps = nil, nil
	g.burst.Store(nil)
	g.burstFree.Store(b)
}
