package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

const kindNum Kind = "test.num"

// numBlueprint declares source -> double -> sink over the given values.
func numBlueprint(t *testing.T, values ...int) *Blueprint {
	t.Helper()
	bp := NewBlueprint()
	samples := make([]Sample, len(values))
	for i, v := range values {
		samples[i] = NewSample(kindNum, v, time.Unix(int64(i), 0))
	}
	if err := bp.AddComponent("src", func(id string) Component {
		return &SliceSource{CompID: id, Out: OutputSpec{Kind: kindNum}, Samples: samples}
	}); err != nil {
		t.Fatal(err)
	}
	if err := bp.AddComponent("double", func(id string) Component {
		return NewTransform(id, kindNum, kindNum, func(in Sample) (Sample, bool) {
			in.Payload = in.Payload.(int) * 2
			return in, true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if err := bp.AddComponent("sink", func(id string) Component {
		return NewSink(id, []Kind{kindNum})
	}); err != nil {
		t.Fatal(err)
	}
	for _, e := range []Edge{{From: "src", To: "double", Port: 0}, {From: "double", To: "sink", Port: 0}} {
		if err := bp.Connect(e.From, e.To, e.Port); err != nil {
			t.Fatal(err)
		}
	}
	return bp
}

func sinkPayloads(t *testing.T, g *Graph) []int {
	t.Helper()
	n, ok := g.Node("sink")
	if !ok {
		t.Fatal("no sink node")
	}
	var out []int
	for _, s := range n.Component().(*Sink).Received() {
		out = append(out, s.Payload.(int))
	}
	return out
}

func TestBlueprintInstantiate(t *testing.T) {
	bp := numBlueprint(t, 1, 2, 3)
	if err := bp.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	g, err := bp.Instantiate()
	if err != nil {
		t.Fatalf("Instantiate: %v", err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	got := sinkPayloads(t, g)
	want := []int{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("sink received %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sink received %v, want %v", got, want)
		}
	}
}

func TestBlueprintFreezesOnInstantiate(t *testing.T) {
	bp := numBlueprint(t, 1)
	if _, err := bp.Instantiate(); err != nil {
		t.Fatal(err)
	}
	if err := bp.AddComponent("late", nil); !errors.Is(err, ErrBlueprintFrozen) {
		t.Fatalf("AddComponent after freeze = %v, want ErrBlueprintFrozen", err)
	}
	if err := bp.Connect("src", "sink", 0); !errors.Is(err, ErrBlueprintFrozen) {
		t.Fatalf("Connect after freeze = %v, want ErrBlueprintFrozen", err)
	}
	if err := bp.AttachFeature("double", func() Feature { return nil }); !errors.Is(err, ErrBlueprintFrozen) {
		t.Fatalf("AttachFeature after freeze = %v, want ErrBlueprintFrozen", err)
	}
}

func TestBlueprintPlaceholderRequiresOverride(t *testing.T) {
	bp := NewBlueprint()
	if err := bp.AddComponent("src", nil); err != nil {
		t.Fatal(err)
	}
	if err := bp.AddComponent("sink", func(id string) Component {
		return NewSink(id, []Kind{kindNum})
	}); err != nil {
		t.Fatal(err)
	}
	if err := bp.Connect("src", "sink", 0); err != nil {
		t.Fatal(err)
	}
	if got := bp.Placeholders(); len(got) != 1 || got[0] != "src" {
		t.Fatalf("Placeholders = %v, want [src]", got)
	}
	if _, err := bp.Instantiate(); !errors.Is(err, ErrOverrideRequired) {
		t.Fatalf("Instantiate without override = %v, want ErrOverrideRequired", err)
	}
	g, err := bp.Instantiate(WithComponentOverride("src", func(id string) Component {
		return &SliceSource{CompID: id, Out: OutputSpec{Kind: kindNum},
			Samples: []Sample{NewSample(kindNum, 7, time.Unix(0, 0))}}
	}))
	if err != nil {
		t.Fatalf("Instantiate with override: %v", err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := sinkPayloads(t, g); len(got) != 1 || got[0] != 7 {
		t.Fatalf("sink received %v, want [7]", got)
	}
}

func TestBlueprintUnknownOverride(t *testing.T) {
	bp := numBlueprint(t, 1)
	_, err := bp.Instantiate(WithComponentOverride("nope", func(id string) Component { return nil }))
	if !errors.Is(err, ErrUnknownOverride) {
		t.Fatalf("Instantiate = %v, want ErrUnknownOverride", err)
	}
}

// TestBlueprintInstancesIndependent is the isolation guarantee of the
// blueprint/instance split: adapting one instance — inserting a
// component, attaching a feature, deleting a component — provably does
// not affect a sibling instance from the same blueprint.
func TestBlueprintInstancesIndependent(t *testing.T) {
	bp := numBlueprint(t, 1, 2, 3, 4)

	a, err := bp.Instantiate()
	if err != nil {
		t.Fatal(err)
	}
	c, err := bp.Instantiate()
	if err != nil {
		t.Fatal(err)
	}

	// Adapt instance a: insert a filter dropping odd inputs between src
	// and double (§3.1-style insertion)...
	filter := NewFilter("even-only", kindNum, func(in Sample) bool {
		return in.Payload.(int)%2 == 0
	})
	if err := a.InsertBetween(filter, "src", "double", 0, 0); err != nil {
		t.Fatalf("InsertBetween on a: %v", err)
	}
	// ...and attach a produce-hook feature on a's double that adds 1.
	nodeA, _ := a.Node("double")
	if err := nodeA.AttachFeature(&addOneFeature{}); err != nil {
		t.Fatal(err)
	}

	if _, err := a.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(0); err != nil {
		t.Fatal(err)
	}

	gotA := sinkPayloads(t, a)
	wantA := []int{5, 9} // evens 2,4 doubled then +1
	if fmt.Sprint(gotA) != fmt.Sprint(wantA) {
		t.Fatalf("adapted instance delivered %v, want %v", gotA, wantA)
	}
	gotC := sinkPayloads(t, c)
	wantC := []int{2, 4, 6, 8} // untouched blueprint behaviour
	if fmt.Sprint(gotC) != fmt.Sprint(wantC) {
		t.Fatalf("sibling instance delivered %v, want %v (leaked adaptation)", gotC, wantC)
	}

	// The sibling's structure is untouched too: no filter, no feature.
	if _, ok := c.Node("even-only"); ok {
		t.Fatal("inserted component leaked into sibling instance")
	}
	nodeC, _ := c.Node("double")
	if nodeC.HasCapability("add-one") {
		t.Fatal("attached feature leaked into sibling instance")
	}

	// Deletion on one instance does not affect the other either.
	if err := a.Remove("even-only"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Node("double"); !ok {
		t.Fatal("sibling instance lost a node after Remove on the other")
	}
}

type addOneFeature struct{}

func (*addOneFeature) FeatureName() string { return "add-one" }
func (*addOneFeature) Produce(out Sample) (Sample, bool) {
	out.Payload = out.Payload.(int) + 1
	return out, true
}

func TestBlueprintConcurrentInstantiate(t *testing.T) {
	bp := numBlueprint(t, 1, 2, 3)
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	graphs := make([]*Graph, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g, err := bp.Instantiate()
			if err != nil {
				errs[i] = err
				return
			}
			if _, err := g.Run(0); err != nil {
				errs[i] = err
			}
			graphs[i] = g
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		if got := sinkPayloads(t, graphs[i]); len(got) != 3 {
			t.Fatalf("instance %d delivered %d samples, want 3", i, len(got))
		}
	}
}
