package gps

import (
	"strconv"
	"strings"

	"perpos/internal/core"
	"perpos/internal/nmea"
)

// Feature and attribute names used by the GPS Component Features.
const (
	// FeatureHDOP is the name of the HDOP Component Feature (§3.2).
	FeatureHDOP = "gps.hdop"
	// FeatureSatellites is the name of the NumberOfSatellites Component
	// Feature (§3.1).
	FeatureSatellites = "gps.satellites"
	// AttrHDOP is the sample attribute carrying the HDOP of the
	// measurement a sample was derived from.
	AttrHDOP = "hdop"
	// AttrSatellites is the sample attribute carrying the satellite
	// count.
	AttrSatellites = "satellites"
)

// HDOPProvider is the functional interface of the HDOP feature: the
// Fig. 5 component.getFeature(HDOP.class).getHDOP() lookup.
type HDOPProvider interface {
	// HDOP returns the most recent horizontal dilution of precision and
	// whether one has been observed.
	HDOP() (float64, bool)
}

// HDOPFeature is the Component Feature of §3.2: attached to the Parser,
// it extracts the HDOP from each GGA measurement flowing out, exposes
// it as component state (HDOPProvider), attaches it as a sample
// attribute, and re-emits it as feature data through the host's output
// port (the parser.produce(nmeaSentence.HDOP) of Fig. 5, label 3) for
// consumers that declare interest.
type HDOPFeature struct {
	host core.FeatureHost
	last float64
	seen bool
}

var (
	_ core.ProduceHook     = (*HDOPFeature)(nil)
	_ core.BindableFeature = (*HDOPFeature)(nil)
	_ HDOPProvider         = (*HDOPFeature)(nil)
)

// NewHDOPFeature returns an HDOP feature ready to attach to a Parser.
func NewHDOPFeature() *HDOPFeature { return &HDOPFeature{} }

// FeatureName implements core.Feature.
func (f *HDOPFeature) FeatureName() string { return FeatureHDOP }

// Bind implements core.BindableFeature.
func (f *HDOPFeature) Bind(host core.FeatureHost) { f.host = host }

// Produce implements core.ProduceHook.
func (f *HDOPFeature) Produce(out core.Sample) (core.Sample, bool) {
	g, ok := hdopOf(out)
	if !ok {
		return out, true
	}
	f.last = g
	f.seen = true
	out = out.WithAttr(AttrHDOP, g)
	if f.host != nil {
		f.host.EmitFeatureData(core.NewSample("gps.hdop.value", g, out.Time))
	}
	return out, true
}

// HDOP implements HDOPProvider.
func (f *HDOPFeature) HDOP() (float64, bool) { return f.last, f.seen }

// SatelliteProvider is the functional interface of the
// NumberOfSatellites feature.
type SatelliteProvider interface {
	// Satellites returns the most recent satellite count and whether one
	// has been observed.
	Satellites() (int, bool)
}

// SatellitesFeature is the NumberOfSatellites Component Feature of
// §3.1: attached to the Parser, it "adds a new data element to its
// output" — the satellite count — which the inserted filter component
// downstream uses to drop unreliable measurements.
type SatellitesFeature struct {
	last int
	seen bool
}

var (
	_ core.ProduceHook  = (*SatellitesFeature)(nil)
	_ SatelliteProvider = (*SatellitesFeature)(nil)
)

// NewSatellitesFeature returns a NumberOfSatellites feature.
func NewSatellitesFeature() *SatellitesFeature { return &SatellitesFeature{} }

// FeatureName implements core.Feature.
func (f *SatellitesFeature) FeatureName() string { return FeatureSatellites }

// Produce implements core.ProduceHook.
func (f *SatellitesFeature) Produce(out core.Sample) (core.Sample, bool) {
	n, ok := satellitesOf(out)
	if !ok {
		return out, true
	}
	f.last = n
	f.seen = true
	return out.WithAttr(AttrSatellites, n), true
}

// Satellites implements SatelliteProvider.
func (f *SatellitesFeature) Satellites() (int, bool) { return f.last, f.seen }

// NewSatelliteFilter returns the §3.1 filter component: inserted after
// the Parser, it forwards only measurements whose satellite count (as
// attached by the NumberOfSatellites feature) is at least minSats.
// Sentences without a satellite count (e.g. RMC) pass through — the
// reliability decision is only meaningful for fix measurements.
func NewSatelliteFilter(id string, minSats int) *core.FuncComponent {
	return &core.FuncComponent{
		CompID: id,
		CompSpec: core.Spec{
			Name: "SatelliteFilter",
			Inputs: []core.PortSpec{{
				Name:             "nmea",
				Accepts:          []core.Kind{KindSentence},
				RequiresFeatures: []string{FeatureSatellites},
			}},
			Output: core.OutputSpec{Kind: KindSentence},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			if n, ok := in.IntAttr(AttrSatellites); ok && n < minSats {
				return nil
			}
			emit(in)
			return nil
		},
	}
}

// NewHDOPFilter returns the §3.2 accuracy filter component: inserted
// after the Parser, it forwards only measurements whose HDOP (as
// attached by the HDOP feature) is at most maxHDOP. Sentences without
// an HDOP attribute (e.g. RMC) pass through — the accuracy decision is
// only meaningful for fix measurements. The rules engine inserts and
// removes this component as HDOP degrades and recovers.
func NewHDOPFilter(id string, maxHDOP float64) *core.FuncComponent {
	return &core.FuncComponent{
		CompID: id,
		CompSpec: core.Spec{
			Name: "HDOPFilter",
			Inputs: []core.PortSpec{{
				Name:             "nmea",
				Accepts:          []core.Kind{KindSentence},
				RequiresFeatures: []string{FeatureHDOP},
			}},
			Output: core.OutputSpec{Kind: KindSentence},
		},
		Fn: func(_ int, in core.Sample, emit core.Emit) error {
			if h, ok := in.FloatAttr(AttrHDOP); ok && h > maxHDOP {
				return nil
			}
			emit(in)
			return nil
		},
	}
}

// RewriteHDOP returns a copy of a raw NMEA GGA or GSA sentence with
// its HDOP field replaced and the checksum recomputed. Both carry HDOP
// on the wire, and the parser-side HDOP feature reads it from either —
// rewriting only one type would leave the clean value flickering back
// through the other. Sentences of other types (and malformed ones) are
// returned unchanged. It exists for chaos scenarios: wrap a receiver
// with chaos.WithCorrupt and rewrite the HDOP of every fix sentence
// flowing out to simulate accuracy degradation that the real parser
// and HDOP feature then observe.
func RewriteHDOP(raw string, hdop float64) string {
	payload := strings.TrimPrefix(strings.TrimRight(raw, "\r\n"), "$")
	if i := strings.IndexByte(payload, '*'); i >= 0 {
		payload = payload[:i]
	}
	comma := strings.IndexByte(payload, ',')
	if comma < 0 {
		return raw
	}
	// HDOP's field index per sentence type: GGA field 8, GSA field 16
	// (after the twelve PRN slots and PDOP).
	var idx int
	switch {
	case strings.HasSuffix(payload[:comma], "GGA"):
		idx = 8
	case strings.HasSuffix(payload[:comma], "GSA"):
		idx = 16
	default:
		return raw
	}
	fields := strings.Split(payload, ",")
	if len(fields) <= idx {
		return raw
	}
	fields[idx] = strconv.FormatFloat(hdop, 'f', 1, 64)
	return nmea.Frame(strings.Join(fields, ","))
}

// hdopOf extracts HDOP from a parsed-sentence sample. Both GGA and GSA
// sentences carry it, boxed or pooled.
func hdopOf(s core.Sample) (float64, bool) {
	switch v := s.Payload.(type) {
	case nmea.GGA:
		if v.Quality == nmea.FixInvalid {
			return 0, false
		}
		return v.HDOP, true
	case nmea.GSA:
		if v.FixMode < 2 {
			return 0, false
		}
		return v.HDOP, true
	case *nmea.Parsed:
		switch v.Kind() {
		case nmea.KindGGA:
			g := v.GGA()
			if g.Quality == nmea.FixInvalid {
				return 0, false
			}
			return g.HDOP, true
		case nmea.KindGSA:
			g := v.GSA()
			if g.FixMode < 2 {
				return 0, false
			}
			return g.HDOP, true
		}
		return 0, false
	default:
		return 0, false
	}
}

// satellitesOf extracts the satellite count from a parsed-sentence
// sample.
func satellitesOf(s core.Sample) (int, bool) {
	switch v := s.Payload.(type) {
	case nmea.GGA:
		return v.NumSatellites, true
	case nmea.GSA:
		return len(v.PRNs), true
	case *nmea.Parsed:
		switch v.Kind() {
		case nmea.KindGGA:
			return v.GGA().NumSatellites, true
		case nmea.KindGSA:
			return len(v.GSA().PRNs), true
		}
		return 0, false
	default:
		return 0, false
	}
}

// FeatureParserStats is the name of the parser statistics feature.
const FeatureParserStats = "gps.parser-stats"

// ParserStats is the functional interface of the parser statistics
// feature — the "changing component state" augmentation of §2.1 in its
// read-only form: internal component state exposed without modifying
// the Parser.
type ParserStats interface {
	// Parsed returns the number of successfully parsed sentences.
	Parsed() int
	// Dropped returns the number of malformed sentences discarded.
	Dropped() int
	// DropRate returns dropped/(parsed+dropped), 0 when idle.
	DropRate() float64
}

// StatsFeature exposes the host Parser's internal counters. Attach it
// to a Parser node; callers retrieve it with Node.Feature and assert to
// ParserStats.
type StatsFeature struct {
	parser *Parser
}

var (
	_ core.BindableFeature = (*StatsFeature)(nil)
	_ ParserStats          = (*StatsFeature)(nil)
)

// NewStatsFeature returns the feature.
func NewStatsFeature() *StatsFeature { return &StatsFeature{} }

// FeatureName implements core.Feature.
func (f *StatsFeature) FeatureName() string { return FeatureParserStats }

// Bind implements core.BindableFeature.
func (f *StatsFeature) Bind(host core.FeatureHost) {
	if p, ok := host.Component().(*Parser); ok {
		f.parser = p
	}
}

// Parsed implements ParserStats.
func (f *StatsFeature) Parsed() int {
	if f.parser == nil {
		return 0
	}
	parsed, _ := f.parser.Stats()
	return parsed
}

// Dropped implements ParserStats.
func (f *StatsFeature) Dropped() int {
	if f.parser == nil {
		return 0
	}
	_, dropped := f.parser.Stats()
	return dropped
}

// DropRate implements ParserStats.
func (f *StatsFeature) DropRate() float64 {
	total := f.Parsed() + f.Dropped()
	if total == 0 {
		return 0
	}
	return float64(f.Dropped()) / float64(total)
}
