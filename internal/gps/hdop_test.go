package gps

import (
	"strings"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/nmea"
)

func TestRewriteHDOP(t *testing.T) {
	gga := nmea.GGA{Time: time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC),
		Lat: 56.16, Lon: 10.20, Quality: nmea.FixGPS, NumSatellites: 7, HDOP: 1.2, Altitude: 55}.Format()
	gsa := nmea.GSA{Auto: true, FixMode: 3, PRNs: []int{1, 2, 3, 4}, PDOP: 1.7, HDOP: 1.2, VDOP: 1.4}.Format()
	rmc := nmea.RMC{Time: time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC), Valid: true, Lat: 56.16, Lon: 10.20}.Format()

	for _, raw := range []string{gga, gsa} {
		out := RewriteHDOP(raw, 9.9)
		if out == raw {
			t.Fatalf("RewriteHDOP left %q unchanged", raw)
		}
		s, err := nmea.Parse(out)
		if err != nil {
			t.Fatalf("rewritten sentence no longer parses (checksum?): %v\n%q", err, out)
		}
		switch v := s.(type) {
		case nmea.GGA:
			if v.HDOP != 9.9 {
				t.Fatalf("GGA HDOP = %v, want 9.9", v.HDOP)
			}
		case nmea.GSA:
			if v.HDOP != 9.9 {
				t.Fatalf("GSA HDOP = %v, want 9.9", v.HDOP)
			}
			if v.PDOP != 1.7 || v.VDOP != 1.4 {
				t.Fatalf("GSA neighbours disturbed: %+v", v)
			}
		default:
			t.Fatalf("rewritten sentence parsed as %T", s)
		}
	}

	// Non-fix sentences and garbage pass through untouched.
	for _, raw := range []string{rmc, "not nmea at all", "$GPGGA"} {
		if out := RewriteHDOP(raw, 9.9); out != raw {
			t.Fatalf("RewriteHDOP(%q) = %q, want unchanged", raw, out)
		}
	}
}

func TestHDOPFilterDropsPoorFixes(t *testing.T) {
	f := NewHDOPFilter("flt", 4)
	var out []core.Sample
	emit := func(s core.Sample) { out = append(out, s) }

	mk := func(hdop float64, withAttr bool) core.Sample {
		s := core.NewSample(KindSentence, nil, time.Time{})
		if withAttr {
			s = s.WithAttr(AttrHDOP, hdop)
		}
		return s
	}
	if err := f.Process(0, mk(9.9, true), emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatal("poor fix passed the filter")
	}
	if err := f.Process(0, mk(1.2, true), emit); err != nil {
		t.Fatal(err)
	}
	if err := f.Process(0, mk(0, false), emit); err != nil { // no attr: pass
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("delivered %d samples, want good fix + attrless", len(out))
	}
	if !strings.Contains(f.Spec().Name, "HDOPFilter") {
		t.Fatalf("spec name = %q", f.Spec().Name)
	}
}
