package gps

import (
	"encoding/json"
	"math/rand"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
)

// StateAccess implementations for the GPS pipeline, the checkpoint
// subsystem's seam into the Fig. 1 components. The receiver reseeds its
// noise RNG deterministically from (Seed, emitted) on restore — noise
// realizations after a resume differ from the uninterrupted run, but
// two resumes of the same checkpoint are identical.

var (
	_ core.StateAccess = (*Receiver)(nil)
	_ core.StateAccess = (*Parser)(nil)
	_ core.StateAccess = (*Interpreter)(nil)
)

type receiverState struct {
	Now         time.Time     `json:"now"`
	Mode        Mode          `json:"mode"`
	OffSince    time.Time     `json:"off_since"`
	AcquireLeft time.Duration `json:"acquire_left"`
	Drift       geo.ENU       `json:"drift"`
	LastSats    int           `json:"last_sats"`
	Emitted     int           `json:"emitted"`
	EpochCount  int           `json:"epoch_count"`
}

// MarshalState implements core.StateAccess: the replay clock, power
// state and drift so a restored receiver continues mid-trace.
func (r *Receiver) MarshalState() ([]byte, error) {
	return json.Marshal(receiverState{
		Now:         r.now,
		Mode:        r.mode,
		OffSince:    r.offSince,
		AcquireLeft: r.acquireLeft,
		Drift:       r.drift,
		LastSats:    r.lastSats,
		Emitted:     r.emitted,
		EpochCount:  r.epochCount,
	})
}

// UnmarshalState implements core.StateAccess.
func (r *Receiver) UnmarshalState(data []byte) error {
	var st receiverState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	r.now = st.Now
	r.mode = st.Mode
	r.offSince = st.OffSince
	r.acquireLeft = st.AcquireLeft
	r.drift = st.Drift
	r.lastSats = st.LastSats
	r.emitted = st.Emitted
	r.epochCount = st.EpochCount
	const mix = 0x5851F42D4C957F2D // odd 63-bit mixing constant
	r.rng = rand.New(rand.NewSource(r.cfg.Seed ^ (int64(st.Emitted)+1)*mix))
	return nil
}

type parserState struct {
	Parsed  int `json:"parsed"`
	Dropped int `json:"dropped"`
}

// MarshalState implements core.StateAccess.
func (p *Parser) MarshalState() ([]byte, error) {
	return json.Marshal(parserState{Parsed: p.parsed, Dropped: p.dropped})
}

// UnmarshalState implements core.StateAccess.
func (p *Parser) UnmarshalState(data []byte) error {
	var st parserState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	p.parsed, p.dropped = st.Parsed, st.Dropped
	return nil
}

type interpreterState struct {
	LastSpeedMS float64 `json:"last_speed_ms"`
	Emitted     int     `json:"emitted"`
}

// MarshalState implements core.StateAccess.
func (i *Interpreter) MarshalState() ([]byte, error) {
	return json.Marshal(interpreterState{LastSpeedMS: i.lastSpeedMS, Emitted: i.emitted})
}

// UnmarshalState implements core.StateAccess.
func (i *Interpreter) UnmarshalState(data []byte) error {
	var st interpreterState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	i.lastSpeedMS, i.emitted = st.LastSpeedMS, st.Emitted
	return nil
}
