package gps

import (
	"errors"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/nmea"
	"perpos/internal/positioning"
)

// Parser is the Processing Component that turns raw receiver strings
// into NMEA measurements (Fig. 1). Malformed sentences are counted and
// dropped, not propagated as errors — a receiver burps garbage
// routinely.
type Parser struct {
	id string

	parsed  int
	dropped int
}

var _ core.Component = (*Parser)(nil)

// NewParser returns a Parser component.
func NewParser(id string) *Parser { return &Parser{id: id} }

// ID implements core.Component.
func (p *Parser) ID() string { return p.id }

// Spec implements core.Component.
func (p *Parser) Spec() core.Spec {
	return core.Spec{
		Name:   "Parser",
		Inputs: []core.PortSpec{{Name: "raw", Accepts: []core.Kind{KindRaw}}},
		Output: core.OutputSpec{Kind: KindSentence},
	}
}

// Process implements core.Component. Raw payloads arrive as strings or,
// from a pooled-output receiver, as *nmea.Raw; pooled input produces
// pooled *nmea.Parsed output so the whole sentence path stays
// allocation-free.
func (p *Parser) Process(_ int, in core.Sample, emit core.Emit) error {
	var (
		s   nmea.Sentence
		err error
	)
	switch raw := in.Payload.(type) {
	case string:
		s, err = nmea.Parse(raw)
	case *nmea.Raw:
		// The receiver's Raw stays referenced by the channel-layer
		// history for the duration of this synchronous call, and
		// ParsePooled retains nothing from the input bytes.
		s, err = nmea.ParsePooled(raw.Bytes())
	default:
		p.dropped++
		return nil
	}
	if err != nil {
		if errors.Is(err, nmea.ErrUnknownType) {
			// Unknown-but-well-formed sentences are normal; ignore.
			return nil
		}
		p.dropped++
		return nil
	}
	p.parsed++
	emit(core.NewSample(KindSentence, s, in.Time))
	return nil
}

// Stats returns (parsed, dropped) sentence counts — exposed for
// state-access Component Features.
func (p *Parser) Stats() (parsed, dropped int) { return p.parsed, p.dropped }

// Interpreter is the Processing Component producing WGS84 positions
// from NMEA measurements (Fig. 1). It only emits when a sentence
// contains a valid fix — which is why several NMEA sentences may group
// under one position in the Fig. 4 data tree.
type Interpreter struct {
	id   string
	uere float64

	lastSpeedMS float64
	emitted     int
	// attrCache holds shared attrs snapshots keyed by speed, for
	// positions whose input carries no attrs of its own. Wire speeds are
	// quantised to 0.1 kn so a session sees few distinct values; attr
	// maps are copy-on-write by convention (Sample.WithAttr), so sharing
	// one map across emissions is safe and avoids a map allocation plus
	// a float box per position.
	attrCache [16]struct {
		speed float64
		attrs map[string]any
	}
	attrNext int
}

var _ core.Component = (*Interpreter)(nil)

// NewInterpreter returns an Interpreter. uere scales HDOP into an
// accuracy estimate; pass 0 for the default (3 m).
func NewInterpreter(id string, uere float64) *Interpreter {
	if uere <= 0 {
		uere = 3
	}
	return &Interpreter{id: id, uere: uere}
}

// ID implements core.Component.
func (i *Interpreter) ID() string { return i.id }

// Spec implements core.Component.
func (i *Interpreter) Spec() core.Spec {
	return core.Spec{
		Name:   "Interpreter",
		Inputs: []core.PortSpec{{Name: "nmea", Accepts: []core.Kind{KindSentence}}},
		Output: core.OutputSpec{Kind: positioning.KindPosition},
	}
}

// Process implements core.Component. Sentences arrive as boxed values
// from the legacy Parser path or as pooled *nmea.Parsed unions.
func (i *Interpreter) Process(_ int, in core.Sample, emit core.Emit) error {
	switch s := in.Payload.(type) {
	case nmea.GGA:
		i.handleGGA(in, s, emit)
	case nmea.RMC:
		i.handleRMC(s)
	case *nmea.Parsed:
		switch s.Kind() {
		case nmea.KindGGA:
			i.handleGGA(in, s.GGA(), emit)
		case nmea.KindRMC:
			i.handleRMC(s.RMC())
		}
	}
	return nil
}

func (i *Interpreter) handleGGA(in core.Sample, s nmea.GGA, emit core.Emit) {
	if s.Quality == nmea.FixInvalid {
		return
	}
	pos := positioning.Position{
		Time:     in.Time,
		Global:   geo.Point{Lat: s.Lat, Lon: s.Lon, Alt: s.Altitude},
		Accuracy: s.HDOP * i.uere,
		Source:   "gps",
	}
	i.emitted++
	out := core.NewSample(positioning.KindPosition, pos, in.Time)
	// Carry the measurement's feature-attached detail (HDOP,
	// satellite count) forward: consumers asked for it by attaching
	// the features upstream.
	if in.Attrs == nil {
		out.Attrs = i.speedAttrs()
	} else {
		out.Attrs = in.Attrs
		out = out.WithAttr("speedMS", i.lastSpeedMS)
	}
	emit(out)
}

func (i *Interpreter) handleRMC(s nmea.RMC) {
	if s.Valid {
		i.lastSpeedMS = s.SpeedMS()
	}
}

// speedAttrs returns a shared {"speedMS": lastSpeedMS} snapshot,
// reusing a previously built map for a repeated speed value.
func (i *Interpreter) speedAttrs() map[string]any {
	for idx := range i.attrCache {
		if e := &i.attrCache[idx]; e.attrs != nil && e.speed == i.lastSpeedMS {
			return e.attrs
		}
	}
	m := map[string]any{"speedMS": i.lastSpeedMS}
	i.attrCache[i.attrNext] = struct {
		speed float64
		attrs map[string]any
	}{i.lastSpeedMS, m}
	i.attrNext = (i.attrNext + 1) % len(i.attrCache)
	return m
}

// Emitted returns the number of positions produced.
func (i *Interpreter) Emitted() int { return i.emitted }
