package gps

import (
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/nmea"
	"perpos/internal/positioning"
)

// TestPooledReceiverMatchesLegacy is the pooling transparency contract
// at the component level: a pooled-output receiver must emit the same
// framed sentences as a plain one, and the Parser + Interpreter chain
// must produce identical positions from either form.
func TestPooledReceiverMatchesLegacy(t *testing.T) {
	cfg := Config{Seed: 7, ColdStart: time.Second}
	legacy := NewReceiver("gps", outdoorTrace(60), cfg)
	pooled := NewReceiver("gps", outdoorTrace(60), cfg, WithPooledOutput())

	legacyLines := runReceiver(t, legacy)
	pooledLines := runReceiver(t, pooled)

	if len(legacyLines) == 0 || len(legacyLines) != len(pooledLines) {
		t.Fatalf("emitted %d legacy vs %d pooled lines", len(legacyLines), len(pooledLines))
	}
	for i := range legacyLines {
		want := legacyLines[i].Payload.(string)
		raw, ok := pooledLines[i].Payload.(*nmea.Raw)
		if !ok {
			t.Fatalf("pooled line %d payload is %T, want *nmea.Raw", i, pooledLines[i].Payload)
		}
		if got := raw.String(); got != want {
			t.Fatalf("line %d: pooled %q, legacy %q", i, got, want)
		}
		// Detach converts back to the legacy form.
		if det := pooledLines[i].Detach().Payload.(string); det != want {
			t.Fatalf("line %d detached to %q, want %q", i, det, want)
		}
	}

	// Push both streams through Parser -> Interpreter and compare
	// positions exactly.
	positionsFrom := func(lines []core.Sample) []positioning.Position {
		p := NewParser("parser")
		in := NewInterpreter("interp", 0)
		var out []positioning.Position
		collect := func(s core.Sample) {
			out = append(out, s.Payload.(positioning.Position))
		}
		for _, line := range lines {
			var sentences []core.Sample
			if err := p.Process(0, line, func(s core.Sample) { sentences = append(sentences, s) }); err != nil {
				t.Fatal(err)
			}
			for _, s := range sentences {
				if err := in.Process(0, s, collect); err != nil {
					t.Fatal(err)
				}
			}
		}
		return out
	}
	legacyPos := positionsFrom(legacyLines)
	pooledPos := positionsFrom(pooledLines)
	if len(legacyPos) == 0 || len(legacyPos) != len(pooledPos) {
		t.Fatalf("positions: %d legacy vs %d pooled", len(legacyPos), len(pooledPos))
	}
	for i := range legacyPos {
		if legacyPos[i].Global != pooledPos[i].Global ||
			legacyPos[i].Accuracy != pooledPos[i].Accuracy ||
			!legacyPos[i].Time.Equal(pooledPos[i].Time) {
			t.Fatalf("position %d differs:\nlegacy: %+v\npooled: %+v",
				i, legacyPos[i], pooledPos[i])
		}
	}
}

// TestParserPooledFeatureExtraction runs pooled sentences through the
// parser with HDOP and satellite features attached, checking the
// *nmea.Parsed arms of the extractors.
func TestParserPooledFeatureExtraction(t *testing.T) {
	r := NewReceiver("gps", outdoorTrace(30), Config{Seed: 9, ColdStart: time.Second},
		WithPooledOutput())
	lines := runReceiver(t, r)

	p := NewParser("parser")
	hdopSeen, satsSeen := 0, 0
	for _, line := range lines {
		var sentences []core.Sample
		if err := p.Process(0, line, func(s core.Sample) { sentences = append(sentences, s) }); err != nil {
			t.Fatal(err)
		}
		for _, s := range sentences {
			if h, ok := hdopOf(s); ok {
				if h <= 0 || h > 50 {
					t.Fatalf("implausible HDOP %v from pooled sentence", h)
				}
				hdopSeen++
			}
			if n, ok := satellitesOf(s); ok {
				if n < 0 || n > 32 {
					t.Fatalf("implausible satellite count %d", n)
				}
				satsSeen++
			}
		}
	}
	if hdopSeen == 0 || satsSeen == 0 {
		t.Errorf("pooled extraction saw hdop=%d sats=%d samples, want both > 0", hdopSeen, satsSeen)
	}
}

// TestParserDropsUnknownPayloadType pins the Parser's defensive arm.
func TestParserDropsUnknownPayloadType(t *testing.T) {
	p := NewParser("parser")
	if err := p.Process(0, core.NewSample(KindRaw, 42, time.Now()), func(core.Sample) {
		t.Fatal("emitted from garbage payload")
	}); err != nil {
		t.Fatal(err)
	}
	if _, dropped := p.Stats(); dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
}
