// Package gps simulates a consumer GPS receiver and provides the
// Processing Components of the paper's GPS pipeline (Fig. 1): the
// Receiver source emitting raw NMEA strings, the Parser turning strings
// into NMEA measurements, and the Interpreter producing WGS84 positions
// — plus the HDOP and NumberOfSatellites Component Features of
// §3.1–3.2.
//
// Substitution note (DESIGN.md): the paper used real receivers. The
// simulator reproduces the behaviours the case studies depend on:
// HDOP-scaled position noise, satellite-count degradation indoors, the
// "keeps producing measurements after losing sight of the satellites"
// failure mode that motivates the §3.1 filter, and acquisition delays
// plus controllable power state for EnTracked (§3.3).
package gps

import (
	"math"
	"math/rand"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/nmea"
	"perpos/internal/trace"
)

// Sample kinds of the GPS pipeline.
const (
	// KindRaw carries raw NMEA sentence strings from the receiver.
	KindRaw core.Kind = "gps.raw"
	// KindSentence carries parsed nmea.Sentence values.
	KindSentence core.Kind = "gps.sentence"
)

// Mode is the receiver power state.
type Mode int

// Receiver power states. The zero value is intentionally invalid so a
// forgotten initialization is caught.
const (
	// ModeOff: the receiver is powered down and produces nothing.
	ModeOff Mode = iota + 1
	// ModeAcquiring: powered on, searching for satellites; produces
	// no-fix sentences.
	ModeAcquiring
	// ModeTracking: producing fixes.
	ModeTracking
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeAcquiring:
		return "acquiring"
	case ModeTracking:
		return "tracking"
	default:
		return "invalid"
	}
}

// TickFunc observes receiver state per simulated epoch; the energy
// model uses it to integrate power draw.
type TickFunc func(mode Mode, d time.Duration)

// Config parameterizes the receiver simulation.
type Config struct {
	// Epoch is the output period (default 1 s).
	Epoch time.Duration
	// UERE is the user-equivalent range error in metres; horizontal
	// error is ~ HDOP * UERE (default 3 m).
	UERE float64
	// WarmStart is the reacquisition delay after a short power-down
	// (default 6 s).
	WarmStart time.Duration
	// ColdStart is the acquisition delay after a long power-down or at
	// boot (default 30 s).
	ColdStart time.Duration
	// ColdThreshold is the off-duration beyond which reacquisition is
	// cold (default 10 min).
	ColdThreshold time.Duration
	// IndoorDriftRate is the random-walk drift in m per sqrt(s) applied
	// to indoor "ghost" fixes (default 1.5).
	IndoorDriftRate float64
	// Seed makes the simulation deterministic.
	Seed int64
	// Loop wraps back to the start of the trace instead of exhausting,
	// turning the receiver into an endless source — what saturation
	// benchmarks and soak runs drive flat-out.
	Loop bool
}

func (c Config) withDefaults() Config {
	if c.Epoch <= 0 {
		c.Epoch = time.Second
	}
	if c.UERE <= 0 {
		c.UERE = 3
	}
	if c.WarmStart <= 0 {
		c.WarmStart = 6 * time.Second
	}
	if c.ColdStart <= 0 {
		c.ColdStart = 30 * time.Second
	}
	if c.ColdThreshold <= 0 {
		c.ColdThreshold = 10 * time.Minute
	}
	if c.IndoorDriftRate <= 0 {
		c.IndoorDriftRate = 1.5
	}
	return c
}

// Receiver is a simulated GPS receiver: a Producer source that walks a
// ground-truth trace and emits raw NMEA strings each epoch. It
// implements PowerControllable for EnTracked-style duty cycling.
type Receiver struct {
	id   string
	cfg  Config
	tr   *trace.Trace
	rng  *rand.Rand
	proj *geo.Projection // trace-origin projection, built once

	now         time.Time
	end         time.Time
	mode        Mode
	offSince    time.Time
	acquireLeft time.Duration

	drift    geo.ENU // accumulated indoor drift
	lastSats int
	onTick   []TickFunc

	emitted    int
	epochCount int

	// pooled switches raw output from string payloads to pooled
	// *nmea.Raw payloads (see WithPooledOutput).
	pooled bool

	// gsvSats is formatting scratch for one GSV sentence; the formatted
	// string never aliases it, so reuse across epochs is safe.
	gsvSats [4]nmea.SatelliteInView
}

var _ core.Producer = (*Receiver)(nil)

// ReceiverOption configures a Receiver.
type ReceiverOption func(*Receiver)

// WithTick installs a per-epoch tick observer (energy accounting,
// power strategies).
func WithTick(fn TickFunc) ReceiverOption {
	return func(r *Receiver) { r.AddTick(fn) }
}

// StartOff boots the receiver powered down (EnTracked scenarios).
func StartOff() ReceiverOption {
	return func(r *Receiver) {
		r.mode = ModeOff
		r.offSince = time.Time{} // never been on: cold
	}
}

// WithPooledOutput makes the receiver emit pooled *nmea.Raw payloads
// instead of strings, eliminating the per-sentence string and interface
// allocations on the saturated hot path. Pooled payloads follow the
// core.PooledPayload ownership contract (DESIGN.md §13); the session's
// channel-layer history must be deeper than any downstream buffering so
// a sentence stays referenced while in flight. The Parser accepts both
// forms, so enabling this is transparent to the rest of the pipeline.
func WithPooledOutput() ReceiverOption {
	return func(r *Receiver) { r.pooled = true }
}

// NewReceiver returns a receiver replaying the given ground-truth trace.
func NewReceiver(id string, tr *trace.Trace, cfg Config, opts ...ReceiverOption) *Receiver {
	cfg = cfg.withDefaults()
	r := &Receiver{
		id:   id,
		cfg:  cfg,
		tr:   tr,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		proj: geo.NewProjection(tr.Origin),
		mode: ModeAcquiring,
	}
	r.acquireLeft = cfg.ColdStart
	if tr.Len() > 0 {
		r.now = tr.Points[0].Time
		r.end = tr.Points[tr.Len()-1].Time
	}
	for _, opt := range opts {
		opt(r)
	}
	return r
}

// ID implements core.Component.
func (r *Receiver) ID() string { return r.id }

// Spec implements core.Component: a source with one raw-string output.
func (r *Receiver) Spec() core.Spec {
	return core.Spec{
		Name:   "GPSReceiver",
		Output: core.OutputSpec{Kind: KindRaw},
	}
}

// Process implements core.Component; sources receive no input.
func (r *Receiver) Process(int, core.Sample, core.Emit) error { return nil }

// Mode returns the current power state.
func (r *Receiver) Mode() Mode { return r.mode }

// Now returns the receiver's current simulated time.
func (r *Receiver) Now() time.Time { return r.now }

// Moving reports whether the device is currently in motion. It stands
// in for the accelerometer EnTracked [3] uses to detect movement
// (substitution documented in DESIGN.md): the reading comes from the
// ground-truth trace, as a real accelerometer's would from the user,
// and is available even while the GPS is powered down.
func (r *Receiver) Moving() bool {
	truth, ok := r.tr.At(r.now)
	return ok && truth.Speed > 0.1
}

// AddTick registers an additional per-epoch tick observer.
func (r *Receiver) AddTick(fn TickFunc) {
	r.onTick = append(r.onTick, fn)
}

// PowerOn requests fixes; the receiver enters acquisition (warm or cold
// depending on how long it was off).
func (r *Receiver) PowerOn() {
	if r.mode != ModeOff {
		return
	}
	if r.offSince.IsZero() || r.now.Sub(r.offSince) >= r.cfg.ColdThreshold {
		r.acquireLeft = r.cfg.ColdStart
	} else {
		r.acquireLeft = r.cfg.WarmStart
	}
	r.mode = ModeAcquiring
}

// PowerOff powers the receiver down.
func (r *Receiver) PowerOff() {
	if r.mode == ModeOff {
		return
	}
	r.mode = ModeOff
	r.offSince = r.now
}

// Emitted returns the number of raw strings emitted so far.
func (r *Receiver) Emitted() int { return r.emitted }

// Step implements core.Producer: advance one epoch and emit the epoch's
// NMEA output.
func (r *Receiver) Step(emit core.Emit) (bool, error) {
	if r.tr.Len() == 0 {
		return false, nil
	}
	if r.now.After(r.end) {
		if !r.cfg.Loop {
			return false, nil
		}
		r.now = r.tr.Points[0].Time
	}
	truth, _ := r.tr.At(r.now)

	for _, tick := range r.onTick {
		tick(r.mode, r.cfg.Epoch)
	}

	switch r.mode {
	case ModeOff:
		// Powered down: silence.
	case ModeAcquiring:
		r.acquireLeft -= r.cfg.Epoch
		emitSentence(r, emit, r.noFixGGA())
		if r.acquireLeft <= 0 {
			r.mode = ModeTracking
		}
	case ModeTracking:
		r.emitEpoch(emit, truth)
	}

	r.now = r.now.Add(r.cfg.Epoch)
	return r.cfg.Loop || !r.now.After(r.end), nil
}

// emitEpoch produces the sentences for one tracking epoch.
func (r *Receiver) emitEpoch(emit core.Emit, truth trace.Point) {
	sats, hdop := r.environment(truth)
	r.lastSats = sats

	if sats < 3 {
		// No fix at all this epoch.
		emitSentence(r, emit, r.noFixGGA())
		return
	}

	local := truth.Local
	sigma := hdop * r.cfg.UERE
	if truth.Indoor {
		// The drifting ghost fix: the device keeps reporting, anchored
		// to a random walk around the last good position.
		step := r.cfg.IndoorDriftRate * math.Sqrt(r.cfg.Epoch.Seconds())
		r.drift.East += r.rng.NormFloat64() * step
		r.drift.North += r.rng.NormFloat64() * step
		local.East += r.drift.East
		local.North += r.drift.North
	} else {
		r.drift = geo.ENU{}
	}
	local.East += r.rng.NormFloat64() * sigma
	local.North += r.rng.NormFloat64() * sigma
	fix := r.proj.ToGlobal(local)

	gga := nmea.GGA{
		Time:          r.now,
		Lat:           fix.Lat,
		Lon:           fix.Lon,
		Quality:       nmea.FixGPS,
		NumSatellites: sats,
		HDOP:          round1(hdop),
		Altitude:      55,
	}
	emitSentence(r, emit, gga)

	speedKn := truth.Speed / 0.514444 * (1 + r.rng.NormFloat64()*0.1)
	if speedKn < 0 {
		speedKn = 0
	}
	rmc := nmea.RMC{
		Time:    r.now,
		Valid:   true,
		Lat:     fix.Lat,
		Lon:     fix.Lon,
		SpeedKn: round1(speedKn),
		CourseT: round1(truth.Heading),
	}
	emitSentence(r, emit, rmc)

	gsa := nmea.GSA{
		Auto:    true,
		FixMode: 3,
		PRNs:    prns(sats),
		PDOP:    round1(hdop * 1.4),
		HDOP:    round1(hdop),
		VDOP:    round1(hdop * 1.1),
	}
	emitSentence(r, emit, gsa)

	// A satellites-in-view report every fifth epoch, like real
	// receivers interleave the slow GSV group.
	r.epochCount++
	if r.epochCount%5 == 0 {
		r.emitGSVGroup(emit, sats)
	}
}

// emitGSVGroup emits the satellites-in-view sentences for the current
// constellation (up to 4 satellites per sentence), formatting each one
// out of the receiver's scratch buffer.
func (r *Receiver) emitGSVGroup(emit core.Emit, sats int) {
	ids := prns(sats)
	total := (len(ids) + 3) / 4
	for msg := 0; msg < total; msg++ {
		n := 0
		for i := msg * 4; i < len(ids) && i < (msg+1)*4; i++ {
			r.gsvSats[n] = nmea.SatelliteInView{
				PRN:       ids[i],
				Elevation: 15 + (ids[i]*7)%70,
				Azimuth:   (ids[i] * 37) % 360,
				SNR:       30 + r.rng.Intn(15),
			}
			n++
		}
		g := nmea.GSV{
			TotalMsgs:   total,
			MsgNum:      msg + 1,
			TotalInView: len(ids),
			Satellites:  r.gsvSats[:n],
		}
		emitSentence(r, emit, g)
	}
}

// environment returns the satellite count and HDOP at a ground-truth
// point. Indoors, visibility collapses and dilution explodes — the
// seams the §3.1 feature exposes.
func (r *Receiver) environment(truth trace.Point) (sats int, hdop float64) {
	if truth.Indoor {
		sats = 2 + r.rng.Intn(4) // 2..5
		hdop = 5 + r.rng.Float64()*10
		return sats, hdop
	}
	sats = 7 + r.rng.Intn(5) // 7..11
	hdop = 0.8 + r.rng.Float64()*0.7
	return sats, hdop
}

func (r *Receiver) noFixGGA() nmea.GGA {
	return nmea.GGA{
		Time:          r.now,
		Quality:       nmea.FixInvalid,
		NumSatellites: r.lastSats,
		HDOP:          99.9,
	}
}

// emitSentence renders and emits one sentence. It is generic over the
// concrete sentence type (a constraint, not an interface parameter) so
// the value never boxes on the legacy path; in pooled mode it renders
// into a recycled *nmea.Raw instead of allocating a string.
func emitSentence[S nmea.Appender](r *Receiver, emit core.Emit, s S) {
	r.emitted++
	if r.pooled {
		emit(core.NewSample(KindRaw, nmea.FormatRaw(s), r.now))
		return
	}
	emit(core.NewSample(KindRaw, string(s.AppendFormat(make([]byte, 0, 96))), r.now))
}

// prnTable is the simulator's fixed constellation: PRNs 2..13. prns
// returns read-only views of it, so callers must not mutate the result.
var prnTable = [...]int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}

func prns(n int) []int {
	if n > len(prnTable) {
		n = len(prnTable)
	}
	if n < 0 {
		n = 0
	}
	return prnTable[:n]
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
