package gps

import (
	"strings"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/nmea"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// outdoorTrace returns a short outdoor walking trace.
func outdoorTrace(seconds int) *trace.Trace {
	return trace.OutdoorTrack(testOrigin, 1, 4, 100, 1.4, time.Second)
}

// indoorTrace returns an indoor corridor walk.
func indoorTrace() *trace.Trace {
	return trace.CorridorWalk(building.Evaluation(), 2, 4, time.Second)
}

// runReceiver steps the receiver to exhaustion, returning every emitted
// sample (payloads are raw lines; envelope times carry the full date).
func runReceiver(t *testing.T, r *Receiver) []core.Sample {
	t.Helper()
	var out []core.Sample
	emit := func(s core.Sample) { out = append(out, s) }
	for i := 0; i < 1_000_000; i++ {
		more, err := r.Step(emit)
		if err != nil {
			t.Fatal(err)
		}
		if !more {
			return out
		}
	}
	t.Fatal("receiver never exhausted")
	return nil
}

func TestReceiverEmitsValidNMEA(t *testing.T) {
	r := NewReceiver("gps", outdoorTrace(60), Config{Seed: 1, ColdStart: 2 * time.Second})
	lines := runReceiver(t, r)
	if len(lines) < 50 {
		t.Fatalf("only %d lines emitted", len(lines))
	}
	var gga, rmc, gsa int
	for _, sample := range lines {
		s, err := nmea.Parse(sample.Payload.(string))
		if err != nil {
			t.Fatalf("receiver emitted unparseable line %q: %v", sample.Payload, err)
		}
		switch s.(type) {
		case nmea.GGA:
			gga++
		case nmea.RMC:
			rmc++
		case nmea.GSA:
			gsa++
		}
	}
	if gga == 0 || rmc == 0 || gsa == 0 {
		t.Errorf("sentence mix GGA=%d RMC=%d GSA=%d; want all > 0", gga, rmc, gsa)
	}
	if r.Emitted() != len(lines) {
		t.Errorf("Emitted() = %d, want %d", r.Emitted(), len(lines))
	}
}

func TestReceiverAcquisitionDelay(t *testing.T) {
	r := NewReceiver("gps", outdoorTrace(60), Config{Seed: 1, ColdStart: 5 * time.Second})
	lines := runReceiver(t, r)
	// The first 5 epochs must be no-fix sentences.
	for i := 0; i < 5 && i < len(lines); i++ {
		s, err := nmea.Parse(lines[i].Payload.(string))
		if err != nil {
			t.Fatal(err)
		}
		g, ok := s.(nmea.GGA)
		if !ok {
			t.Fatalf("line %d during acquisition is %T, want GGA", i, s)
		}
		if g.Quality != nmea.FixInvalid {
			t.Errorf("line %d quality = %v during acquisition", i, g.Quality)
		}
	}
	// Later lines contain fixes.
	sawFix := false
	for _, sample := range lines[5:] {
		if s, err := nmea.Parse(sample.Payload.(string)); err == nil {
			if g, ok := s.(nmea.GGA); ok && g.Quality == nmea.FixGPS {
				sawFix = true
				break
			}
		}
	}
	if !sawFix {
		t.Error("no fix after acquisition")
	}
}

func TestReceiverOutdoorAccuracy(t *testing.T) {
	tr := outdoorTrace(120)
	r := NewReceiver("gps", tr, Config{Seed: 3, ColdStart: time.Second})
	lines := runReceiver(t, r)

	proj := geo.NewProjection(tr.Origin)
	var count int
	var sumErr float64
	for _, sample := range lines {
		s, err := nmea.Parse(sample.Payload.(string))
		if err != nil {
			continue
		}
		g, ok := s.(nmea.GGA)
		if !ok || g.Quality == nmea.FixInvalid {
			continue
		}
		truth, _ := tr.At(sample.Time)
		fix := proj.ToLocal(geo.Point{Lat: g.Lat, Lon: g.Lon})
		sumErr += fix.Distance(truth.Local)
		count++
		if g.NumSatellites < 7 {
			t.Errorf("outdoor satellite count %d < 7", g.NumSatellites)
		}
		if g.HDOP > 1.6 {
			t.Errorf("outdoor HDOP %v > 1.6", g.HDOP)
		}
	}
	if count < 50 {
		t.Fatalf("only %d fixes", count)
	}
	mean := sumErr / float64(count)
	// Mean error ~ sigma * sqrt(pi/2) with sigma ~ HDOP*UERE ~ 3.5 m.
	if mean < 1 || mean > 10 {
		t.Errorf("outdoor mean error = %.2f m, want 1-10 m", mean)
	}
}

func TestReceiverIndoorDegradation(t *testing.T) {
	tr := indoorTrace()
	r := NewReceiver("gps", tr, Config{Seed: 4, ColdStart: time.Second})
	lines := runReceiver(t, r)

	proj := geo.NewProjection(tr.Origin)
	var indoorFixes, lowSats int
	var sumErr float64
	for _, sample := range lines {
		s, err := nmea.Parse(sample.Payload.(string))
		if err != nil {
			continue
		}
		g, ok := s.(nmea.GGA)
		if !ok || g.Quality == nmea.FixInvalid {
			continue
		}
		indoorFixes++
		if g.NumSatellites < 6 {
			lowSats++
		}
		truth, _ := tr.At(sample.Time)
		fix := proj.ToLocal(geo.Point{Lat: g.Lat, Lon: g.Lon})
		sumErr += fix.Distance(truth.Local)
	}
	if indoorFixes == 0 {
		t.Fatal("device should keep producing fixes indoors (the §3.1 seam)")
	}
	if lowSats == 0 {
		t.Error("indoor fixes should have degraded satellite counts")
	}
	mean := sumErr / float64(indoorFixes)
	if mean < 10 {
		t.Errorf("indoor mean error = %.1f m; expected large (>10 m) ghost-fix error", mean)
	}
}

func TestReceiverPowerCycle(t *testing.T) {
	tr := outdoorTrace(300)
	var ticks []Mode
	r := NewReceiver("gps", tr, Config{Seed: 5, ColdStart: 2 * time.Second, WarmStart: time.Second},
		StartOff(),
		WithTick(func(m Mode, _ time.Duration) { ticks = append(ticks, m) }))

	if r.Mode() != ModeOff {
		t.Fatalf("mode = %v, want off at start", r.Mode())
	}
	emitCount := 0
	emit := func(core.Sample) { emitCount++ }

	// Off: stepping produces nothing.
	for i := 0; i < 10; i++ {
		if _, err := r.Step(emit); err != nil {
			t.Fatal(err)
		}
	}
	if emitCount != 0 {
		t.Errorf("emitted %d samples while off", emitCount)
	}

	// Power on: cold acquisition then fixes.
	r.PowerOn()
	if r.Mode() != ModeAcquiring {
		t.Fatalf("mode = %v after PowerOn", r.Mode())
	}
	for i := 0; i < 10; i++ {
		if _, err := r.Step(emit); err != nil {
			t.Fatal(err)
		}
	}
	if r.Mode() != ModeTracking {
		t.Errorf("mode = %v, want tracking", r.Mode())
	}
	if emitCount == 0 {
		t.Error("no emissions after power on")
	}

	// Power off again, then a short off period leads to warm start.
	r.PowerOff()
	if r.Mode() != ModeOff {
		t.Fatalf("mode = %v after PowerOff", r.Mode())
	}
	if _, err := r.Step(emit); err != nil {
		t.Fatal(err)
	}
	r.PowerOn()
	// Warm start is 1 s: one step finishes acquisition.
	if _, err := r.Step(emit); err != nil {
		t.Fatal(err)
	}
	if r.Mode() != ModeTracking {
		t.Errorf("mode = %v after warm start, want tracking", r.Mode())
	}

	// Double PowerOn/PowerOff are no-ops.
	r.PowerOn()
	if r.Mode() != ModeTracking {
		t.Error("PowerOn while on changed mode")
	}
	r.PowerOff()
	r.PowerOff()
	if r.Mode() != ModeOff {
		t.Error("double PowerOff broke mode")
	}

	if len(ticks) == 0 {
		t.Error("tick observer never called")
	}
}

func TestParserPipeline(t *testing.T) {
	g := core.New()
	tr := outdoorTrace(30)
	if _, err := g.Add(NewReceiver("gps", tr, Config{Seed: 6, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	parser := NewParser("parser")
	if _, err := g.Add(parser); err != nil {
		t.Fatal(err)
	}
	interp := NewInterpreter("interpreter", 0)
	if _, err := g.Add(interp); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "app"},
	} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	if sink.Len() == 0 {
		t.Fatal("no positions delivered")
	}
	for _, s := range sink.Received() {
		pos, ok := s.Payload.(positioning.Position)
		if !ok {
			t.Fatalf("payload = %T", s.Payload)
		}
		if !pos.Global.Valid() || pos.Source != "gps" || pos.Accuracy <= 0 {
			t.Errorf("bad position %+v", pos)
		}
	}
	parsed, dropped := parser.Stats()
	if parsed == 0 {
		t.Error("parser parsed nothing")
	}
	if dropped != 0 {
		t.Errorf("parser dropped %d good sentences", dropped)
	}
	if interp.Emitted() != sink.Len() {
		t.Errorf("interpreter emitted %d, sink got %d", interp.Emitted(), sink.Len())
	}
}

func TestParserDropsGarbage(t *testing.T) {
	p := NewParser("parser")
	emitted := 0
	emit := func(core.Sample) { emitted++ }
	inputs := []any{
		"garbage",
		"$GPGGA,123519,4807.038,N,01131.000,E,1,08,0.9,545.4,M,46.9,M,,*00", // bad checksum
		12345, // not a string
		nmea.Frame("GPZDA,123519,23,03,1994,00,00"), // unknown type: ignored silently
	}
	for _, in := range inputs {
		if err := p.Process(0, core.NewSample(KindRaw, in, time.Time{}), emit); err != nil {
			t.Fatal(err)
		}
	}
	if emitted != 0 {
		t.Errorf("emitted %d from garbage", emitted)
	}
	parsed, dropped := p.Stats()
	if parsed != 0 || dropped != 3 {
		t.Errorf("stats = %d/%d, want 0 parsed, 3 dropped", parsed, dropped)
	}
}

func TestInterpreterSpeedFromRMC(t *testing.T) {
	i := NewInterpreter("interp", 0)
	var got []core.Sample
	emit := func(s core.Sample) { got = append(got, s) }

	rmc := nmea.RMC{Valid: true, SpeedKn: 10, Lat: 56, Lon: 10}
	if err := i.Process(0, core.NewSample(KindSentence, rmc, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	gga := nmea.GGA{Quality: nmea.FixGPS, Lat: 56, Lon: 10, NumSatellites: 8, HDOP: 1.0}
	if err := i.Process(0, core.NewSample(KindSentence, gga, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("emitted %d, want 1", len(got))
	}
	speed, ok := got[0].FloatAttr("speedMS")
	if !ok || speed < 5 || speed > 5.2 {
		t.Errorf("speedMS attr = %v/%v, want ~5.14", speed, ok)
	}
}

func TestInterpreterSkipsInvalidFix(t *testing.T) {
	i := NewInterpreter("interp", 0)
	emitted := 0
	emit := func(core.Sample) { emitted++ }
	gga := nmea.GGA{Quality: nmea.FixInvalid}
	if err := i.Process(0, core.NewSample(KindSentence, gga, time.Time{}), emit); err != nil {
		t.Fatal(err)
	}
	if emitted != 0 {
		t.Error("invalid fix produced a position")
	}
}

func TestHDOPFeature(t *testing.T) {
	g := core.New()
	tr := outdoorTrace(20)
	if _, err := g.Add(NewReceiver("gps", tr, Config{Seed: 7, ColdStart: time.Second})); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(NewParser("parser")); err != nil {
		t.Fatal(err)
	}
	parserNode, _ := g.Node("parser")
	feature := NewHDOPFeature()
	if err := parserNode.AttachFeature(feature); err != nil {
		t.Fatal(err)
	}
	sink := core.NewSink("app", []core.Kind{KindSentence},
		core.WithAcceptedFeatures(FeatureHDOP))
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("gps", "parser", 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Connect("parser", "app", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(0); err != nil {
		t.Fatal(err)
	}

	// State access: the feature exposes the last HDOP.
	v, ok := feature.HDOP()
	if !ok || v <= 0 {
		t.Errorf("HDOP() = %v/%v", v, ok)
	}

	// The GGA samples carry the hdop attribute; feature data samples
	// were delivered too.
	var attrCount, featureData int
	for _, s := range sink.Received() {
		if s.FromFeature == FeatureHDOP {
			featureData++
			continue
		}
		if _, ok := s.Payload.(nmea.GGA); ok {
			if _, ok := s.FloatAttr(AttrHDOP); ok {
				attrCount++
			}
		}
	}
	if attrCount == 0 {
		t.Error("no GGA samples carried the hdop attribute")
	}
	if featureData == 0 {
		t.Error("no feature-emitted HDOP data delivered")
	}
}

func TestSatelliteFilterRemovesUnreliableFixes(t *testing.T) {
	// E4 in miniature: indoors, the device keeps emitting fixes with
	// few satellites; the filter inserted after the Parser drops them.
	run := func(t *testing.T, withFilter bool) (delivered int, meanErr float64) {
		t.Helper()
		tr := indoorTrace()
		g := core.New()
		if _, err := g.Add(NewReceiver("gps", tr, Config{Seed: 8, ColdStart: time.Second})); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(NewParser("parser")); err != nil {
			t.Fatal(err)
		}
		parserNode, _ := g.Node("parser")
		if err := parserNode.AttachFeature(NewSatellitesFeature()); err != nil {
			t.Fatal(err)
		}
		if _, err := g.Add(NewInterpreter("interpreter", 0)); err != nil {
			t.Fatal(err)
		}
		sink := core.NewSink("app", []core.Kind{positioning.KindPosition})
		if _, err := g.Add(sink); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("gps", "parser", 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("parser", "interpreter", 0); err != nil {
			t.Fatal(err)
		}
		if err := g.Connect("interpreter", "app", 0); err != nil {
			t.Fatal(err)
		}
		if withFilter {
			if err := g.InsertBetween(NewSatelliteFilter("satfilter", 6), "parser", "interpreter", 0, 0); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}

		proj := geo.NewProjection(tr.Origin)
		var sum float64
		for _, s := range sink.Received() {
			pos := s.Payload.(positioning.Position)
			truth, _ := tr.At(pos.Time)
			sum += proj.ToLocal(pos.Global).Distance(truth.Local)
		}
		if sink.Len() == 0 {
			return 0, 0
		}
		return sink.Len(), sum / float64(sink.Len())
	}

	without, errWithout := run(t, false)
	with, errWith := run(t, true)
	if without == 0 {
		t.Fatal("baseline delivered nothing")
	}
	// Indoors nearly all fixes are low-satellite ghosts: the filter
	// should remove the vast majority.
	if with >= without/2 {
		t.Errorf("filter kept %d of %d fixes; expected < half", with, without)
	}
	t.Logf("satellite filter: %d -> %d fixes, mean error %.1f -> %.1f m",
		without, with, errWithout, errWith)
}

func TestSatelliteFilterRequiresFeature(t *testing.T) {
	// The filter declares its dependency on the NumberOfSatellites
	// feature; wiring it after a bare parser must fail.
	g := core.New()
	if _, err := g.Add(NewParser("parser")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Add(NewSatelliteFilter("filter", 5)); err != nil {
		t.Fatal(err)
	}
	err := g.Connect("parser", "filter", 0)
	if err == nil {
		t.Fatal("connect should fail without the satellites feature")
	}
	if !strings.Contains(err.Error(), FeatureSatellites) {
		t.Errorf("error %v does not name the missing feature", err)
	}
}

func TestModeString(t *testing.T) {
	tests := []struct {
		m    Mode
		want string
	}{
		{ModeOff, "off"},
		{ModeAcquiring, "acquiring"},
		{ModeTracking, "tracking"},
		{Mode(0), "invalid"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Mode(%d).String() = %q, want %q", int(tt.m), got, tt.want)
		}
	}
}

func TestReceiverEmitsGSVGroups(t *testing.T) {
	r := NewReceiver("gps", outdoorTrace(60), Config{Seed: 9, ColdStart: time.Second})
	lines := runReceiver(t, r)
	var gsv int
	for _, sample := range lines {
		s, err := nmea.Parse(sample.Payload.(string))
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := s.(nmea.GSV); ok {
			gsv++
			if g.TotalInView < 7 {
				t.Errorf("GSV reports %d in view outdoors", g.TotalInView)
			}
			if len(g.Satellites) == 0 || len(g.Satellites) > 4 {
				t.Errorf("GSV carries %d satellites", len(g.Satellites))
			}
		}
	}
	if gsv == 0 {
		t.Error("no GSV sentences emitted")
	}
}

func TestParserStatsFeature(t *testing.T) {
	g := core.New()
	parser := NewParser("parser")
	if _, err := g.Add(parser); err != nil {
		t.Fatal(err)
	}
	node, _ := g.Node("parser")
	if err := node.AttachFeature(NewStatsFeature()); err != nil {
		t.Fatal(err)
	}

	emit := func(core.Sample) {}
	good := nmea.GGA{Quality: nmea.FixGPS, Lat: 56, Lon: 10, NumSatellites: 8, HDOP: 1}.Format()
	for _, raw := range []string{good, "garbage", good, "more garbage"} {
		if err := g.Deliver("parser", 0, core.NewSample(KindRaw, raw, time.Time{})); err != nil {
			t.Fatal(err)
		}
	}
	_ = emit

	f, ok := node.Feature(FeatureParserStats)
	if !ok {
		t.Fatal("stats feature not found")
	}
	stats, ok := f.(ParserStats)
	if !ok {
		t.Fatalf("%T does not implement ParserStats", f)
	}
	if stats.Parsed() != 2 || stats.Dropped() != 2 {
		t.Errorf("stats = %d/%d, want 2/2", stats.Parsed(), stats.Dropped())
	}
	if stats.DropRate() != 0.5 {
		t.Errorf("DropRate = %v, want 0.5", stats.DropRate())
	}

	// Unbound feature degrades to zeros.
	unbound := NewStatsFeature()
	if unbound.Parsed() != 0 || unbound.DropRate() != 0 {
		t.Error("unbound feature should report zeros")
	}
}
