package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestHandlerMetricsEndpoint(t *testing.T) {
	m := New()
	m.SpansEmitted.Add(7)
	m.Node("gps").Emissions.Add(7)
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("get /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content-type = %q", ct)
	}
	var snap map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got := snap["spans_emitted"].(float64); got != 7 {
		t.Errorf("spans_emitted = %v, want 7", got)
	}
	if _, ok := snap["nodes"].(map[string]any)["gps"]; !ok {
		t.Errorf("nodes missing gps: %v", snap["nodes"])
	}

	// pprof rides along on the same mux.
	resp2, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("get pprof: %v", err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", resp2.StatusCode)
	}
}

func TestServeBindsEphemeralPort(t *testing.T) {
	m := New()
	s, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
