package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestWritePrometheusCoversMetricFamilies(t *testing.T) {
	m := New()
	m.SpansEmitted.Add(42)
	m.SessionsCreated.Add(3)
	m.InitShards(2)
	m.ShardLive(0).Inc()
	m.RevisionLive(1).Add(5)
	m.RevisionLive(2).Add(2)
	m.RolloutsStarted.Inc()
	m.RolloutUpgraded.Add(7)
	m.ProviderTransition("AVAILABLE")
	m.Node("gps").Emissions.Add(10)
	m.Node("gps").ProcessNs.ObserveDuration(3 * time.Microsecond)
	m.CheckpointAppend("s", 128, 2*time.Millisecond, nil)
	m.ObserveTreeDepth(4)

	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()

	for _, want := range []string{
		"# TYPE perpos_spans_emitted_total counter",
		"perpos_spans_emitted_total 42",
		"perpos_sessions_created_total 3",
		"perpos_sessions_live 1",
		`perpos_shard_sessions_live{shard="0"} 1`,
		"# TYPE perpos_revision_sessions_live gauge",
		`perpos_revision_sessions_live{revision="1"} 5`,
		`perpos_revision_sessions_live{revision="2"} 2`,
		"perpos_rollouts_started_total 1",
		"perpos_rollout_sessions_upgraded_total 7",
		`perpos_provider_transitions_total{state="AVAILABLE"} 1`,
		`perpos_node_emissions_total{node="gps"} 10`,
		"# TYPE perpos_node_process_ns histogram",
		`perpos_node_process_ns_bucket{le="+Inf",node="gps"} 1`,
		`perpos_node_process_ns_count{node="gps"} 1`,
		"perpos_checkpoint_writes_total 1",
		"perpos_checkpoint_bytes_total 128",
		"# TYPE perpos_checkpoint_write_ns histogram",
		"perpos_tree_depth_sum 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestPrometheusHistogramCumulative checks the le buckets are
// cumulative and bounded by powers of two per the histBuckets contract.
func TestPrometheusHistogramCumulative(t *testing.T) {
	m := New()
	// Values 1, 2, 3, 8: buckets 0 (<=1), 1 (<=2), 2 (<=4), 3 (<=8).
	for _, v := range []int64{1, 2, 3, 8} {
		m.TreeDepth.Observe(v)
	}
	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()
	for _, want := range []string{
		`perpos_tree_depth_bucket{le="1"} 1`,
		`perpos_tree_depth_bucket{le="2"} 2`,
		`perpos_tree_depth_bucket{le="4"} 3`,
		`perpos_tree_depth_bucket{le="8"} 4`,
		`perpos_tree_depth_bucket{le="+Inf"} 4`,
		"perpos_tree_depth_count 4",
		"perpos_tree_depth_sum 14",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q\n%s", want, out)
		}
	}
}

func TestPrometheusEndpoints(t *testing.T) {
	m := New()
	m.SpansEmitted.Add(9)
	srv, err := Serve("127.0.0.1:0", m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	for _, path := range []string{"/metrics?format=prom", "/metrics/prom"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("%s Content-Type = %q, want text/plain", path, ct)
		}
		if !strings.Contains(string(body), "perpos_spans_emitted_total 9") {
			t.Fatalf("%s missing counter:\n%s", path, body)
		}
	}

	// The JSON endpoint still serves JSON.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("/metrics Content-Type = %q, want application/json", ct)
	}
}

func TestDeltaQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(4) // history: all small
	}
	before := h.State()
	for i := 0; i < 10; i++ {
		h.Observe(1024) // window: all slow
	}
	after := h.State()

	if got := DeltaQuantile(before, after, 0.99); got != 1024 {
		t.Fatalf("window p99 = %d, want 1024", got)
	}
	// The cumulative view is still dominated by history.
	if got := h.Snapshot().P50; got != 4 {
		t.Fatalf("cumulative p50 = %d, want 4", got)
	}
	// Empty window.
	if got := DeltaQuantile(after, after, 0.99); got != 0 {
		t.Fatalf("empty window quantile = %d, want 0", got)
	}
	// Reversed states clamp instead of underflowing.
	if got := DeltaQuantile(after, before, 0.5); got != 0 {
		t.Fatalf("reversed window quantile = %d, want 0", got)
	}
}
