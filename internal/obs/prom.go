package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// labelEscaper escapes a label value per the Prometheus text exposition
// format: exactly backslash, double-quote and line feed are escaped —
// nothing else. strconv.Quote is NOT equivalent: it also escapes tabs,
// control bytes and non-ASCII as \xNN/\uNNNN sequences, which the
// exposition format has no syntax for, so a scraper would read those
// backslashes literally and the label value would no longer round-trip.
// Node IDs come from config, so hostile values must survive verbatim.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// quoteLabel renders a label value as `"escaped"`.
func quoteLabel(v string) string { return `"` + labelEscaper.Replace(v) + `"` }

// WritePrometheus renders the hub in the Prometheus text exposition
// format (version 0.0.4) — the push-less integration path for external
// scrapers, served next to the JSON snapshot by Handler. Counters map
// to counter metrics, gauges to gauge metrics, and every Histogram to a
// prometheus histogram with cumulative log2 buckets (le="1", "2", "4",
// ... matching the histBuckets contract, plus +Inf).
//
// Like Snapshot it is a point-in-time read under traffic: values are
// individually atomic, not mutually consistent. Rendering takes no
// locks beyond the shard-gauge mutex.
func WritePrometheus(w io.Writer, m *Metrics) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	counter("perpos_spans_emitted_total", "Samples emitted across all instrumented graphs.", m.SpansEmitted.Value())
	counter("perpos_spans_dropped_total", "Gate-refused deliveries.", m.SpansDropped.Value())
	counter("perpos_sessions_created_total", "Sessions instantiated from the blueprint.", m.SessionsCreated.Value())
	counter("perpos_sessions_evicted_total", "Sessions evicted or closed.", m.SessionsEvicted.Value())
	counter("perpos_sessions_resumed_total", "Sessions rehydrated from checkpoints.", m.SessionsResumed.Value())
	counter("perpos_supervisor_engaged_total", "Supervisor reroute engagements and switches.", m.SupervisorEngaged.Value())
	counter("perpos_supervisor_disengaged_total", "Supervisor full restores.", m.SupervisorDisengaged.Value())
	counter("perpos_checkpoint_writes_total", "Durable checkpoint appends.", m.CheckpointWrites.Value())
	counter("perpos_checkpoint_errors_total", "Failed checkpoint appends.", m.CheckpointErrors.Value())
	counter("perpos_checkpoint_bytes_total", "Bytes appended to checkpoint journals.", m.CheckpointBytes.Value())
	counter("perpos_rollouts_started_total", "Rolling upgrades started.", m.RolloutsStarted.Value())
	counter("perpos_rollouts_completed_total", "Rolling upgrades completed.", m.RolloutsCompleted.Value())
	counter("perpos_rollouts_rolled_back_total", "Rolling upgrades rolled back by the canary gate.", m.RolloutsRolledBack.Value())
	counter("perpos_rollout_sessions_upgraded_total", "Sessions migrated to a new revision.", m.RolloutUpgraded.Value())
	counter("perpos_rollout_sessions_reverted_total", "Canary sessions migrated back after a gate failure.", m.RolloutReverted.Value())
	counter("perpos_rollout_sessions_failed_total", "Session migrations that errored.", m.RolloutFailed.Value())

	gauge("perpos_sessions_live", "Live sessions across all shards.", m.SessionsLive())

	m.shardMu.Lock()
	shardLive := make([]int64, len(m.shardLive))
	for i, g := range m.shardLive {
		shardLive[i] = g.Value()
	}
	m.shardMu.Unlock()
	if len(shardLive) > 0 {
		fmt.Fprintf(w, "# HELP perpos_shard_sessions_live Live sessions per manager shard.\n# TYPE perpos_shard_sessions_live gauge\n")
		for i, v := range shardLive {
			fmt.Fprintf(w, "perpos_shard_sessions_live{shard=%s} %d\n", quoteLabel(strconv.Itoa(i)), v)
		}
	}

	writeLabeledGauges(w, "perpos_revision_sessions_live", "Live sessions per blueprint revision.",
		"revision", collectGauges(&m.revisionLive))
	writeLabeledCounters(w, "perpos_provider_transitions_total", "Provider availability transitions into each state.",
		"state", collectCounters(&m.providerTransitions))

	counter("perpos_remote_sent_total", "Samples shipped over remote uplinks.", m.RemoteSent.Value())
	counter("perpos_remote_dropped_total", "Samples shed because the uplink peer was unreachable.", m.RemoteDropped.Value())
	writeLabeledGauges(w, "perpos_remote_backoff_ns", "Current uplink redial backoff in nanoseconds.",
		"uplink", collectGauges(&m.remoteBackoff))

	counter("perpos_cluster_handoffs_total", "Completed cluster session handoffs.", m.ClusterHandoffs.Value())
	counter("perpos_cluster_handoff_failed_total", "Cluster session handoffs that failed and rolled back.", m.ClusterHandoffFailed.Value())
	counter("perpos_cluster_failovers_total", "Node-death failovers executed by the router.", m.ClusterFailovers.Value())
	counter("perpos_cluster_sessions_resurrected_total", "Sessions resurrected on survivors after a node death.", m.ClusterResurrected.Value())
	counter("perpos_cluster_sessions_rebalanced_total", "Sessions moved by join/leave rebalancing.", m.ClusterRebalanced.Value())
	counter("perpos_cluster_stale_served_total", "Position queries served from the router's last-known cache.", m.ClusterStaleServed.Value())
	writeLabeledGauges(w, "perpos_cluster_node_sessions", "Sessions routed to each cluster node.",
		"node", collectGauges(&m.clusterNodeSessions))
	writeLabeledGauges(w, "perpos_cluster_node_up", "Cluster node breaker state: 1 healthy, 0 quarantined or dead.",
		"node", collectGauges(&m.clusterNodeUp))
	writeHistogram(w, "perpos_cluster_handoff_ns", "End-to-end session handoff latency in nanoseconds.", nil, &m.ClusterHandoffNs)

	counter("perpos_rules_engaged_total", "Rule-engine action engagements.", m.RulesEngaged.Value())
	counter("perpos_rules_disengaged_total", "Rule-engine action reverts.", m.RulesDisengaged.Value())
	counter("perpos_rules_quarantined_total", "Rules benched by flap damping or guard rollback.", m.RulesQuarantined.Value())
	counter("perpos_rules_rolled_back_total", "Rule actions reverted by the probation guard.", m.RulesRolledBack.Value())
	counter("perpos_rules_deferred_total", "Rule engagements blocked by arbitration.", m.RulesDeferred.Value())

	writeHistogram(w, "perpos_checkpoint_write_ns", "Checkpoint append latency in nanoseconds.", nil, &m.CheckpointNs)
	writeHistogram(w, "perpos_tree_depth", "Channel data-tree depth distribution.", nil, &m.TreeDepth)
	writeHistogram(w, "perpos_e2e_latency_ns", "End-to-end pipeline latency in nanoseconds, from trace spans.", nil, &m.E2ELatencyNs)

	// Per-node metrics, sorted for a stable exposition.
	for _, id := range m.NodeIDs() {
		nm := m.Node(id)
		label := map[string]string{"node": id}
		writeLabeledCounter(w, "perpos_node_emissions_total", "Samples emitted by the node.", label, nm.Emissions.Value())
		writeLabeledCounter(w, "perpos_node_errors_total", "Failed process/step outcomes.", label, nm.Errors.Value())
		writeLabeledCounter(w, "perpos_node_panics_total", "Contained panics.", label, nm.Panics.Value())
		writeLabeledCounter(w, "perpos_node_drops_total", "Gate-refused deliveries.", label, nm.Drops.Value())
		writeLabeledCounter(w, "perpos_node_restarts_total", "Source restarts.", label, nm.Restarts.Value())
		writeHistogram(w, "perpos_node_process_ns", "Node process/step latency in nanoseconds.", label, &nm.ProcessNs)
	}
}

func labelString(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ","
		}
		out += k + "=" + quoteLabel(labels[k])
	}
	return out + "}"
}

func writeLabeledCounter(w io.Writer, name, help string, labels map[string]string, v uint64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s%s %d\n", name, help, name, name, labelString(labels), v)
}

func collectCounters(src *sync.Map) map[string]uint64 {
	out := make(map[string]uint64)
	src.Range(func(k, v any) bool {
		out[keyString(k)] = v.(*Counter).Value()
		return true
	})
	return out
}

func collectGauges(src *sync.Map) map[string]int64 {
	out := make(map[string]int64)
	src.Range(func(k, v any) bool {
		out[keyString(k)] = v.(*Gauge).Value()
		return true
	})
	return out
}

func keyString(k any) string {
	switch t := k.(type) {
	case string:
		return t
	case int:
		return strconv.Itoa(t)
	default:
		return fmt.Sprint(t)
	}
}

func writeLabeledCounters(w io.Writer, name, help, label string, values map[string]uint64) {
	if len(values) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, k := range sortedKeysU(values) {
		fmt.Fprintf(w, "%s{%s=%s} %d\n", name, label, quoteLabel(k), values[k])
	}
}

func writeLabeledGauges(w io.Writer, name, help, label string, values map[string]int64) {
	if len(values) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, k := range sortedKeysI(values) {
		fmt.Fprintf(w, "%s{%s=%s} %d\n", name, label, quoteLabel(k), values[k])
	}
}

func sortedKeysU(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysI(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// writeHistogram renders one Histogram as a prometheus histogram:
// cumulative bucket counts with le upper bounds following the log2
// bucket contract (bucket 0 -> le="1", bucket i -> le="2^i"), a +Inf
// bucket, then _sum and _count.
func writeHistogram(w io.Writer, name, help string, labels map[string]string, h *Histogram) {
	st := h.State()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i := 0; i < histBuckets-1; i++ {
		cum += st.Buckets[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, strconv.FormatUint(1<<uint(i), 10)), cum)
	}
	cum += st.Buckets[histBuckets-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, labelString(labels), h.sum.Load())
	fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels), cum)
}

// bucketLabels merges the metric labels with the le bound.
func bucketLabels(labels map[string]string, le string) string {
	merged := make(map[string]string, len(labels)+1)
	for k, v := range labels {
		merged[k] = v
	}
	merged["le"] = le
	return labelString(merged)
}
