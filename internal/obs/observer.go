package obs

import (
	"errors"
	"time"

	"perpos/internal/core"
)

// GraphObserver adapts a Metrics hub to every engine seam at once: it
// is a core.RunnerObserver (error/panic/restart accounting), a
// core.NodeTimer (process-latency histograms), a core.DeliveryGate
// (counting quarantine drops) and, via Tap, a core.TapFunc (emission
// counting). It wraps an optional inner observer — in practice the
// session's health.Monitor — so one WithRunnerObserver slot serves
// both supervision and metrics.
type GraphObserver struct {
	m     *Metrics
	inner core.RunnerObserver
	gate  core.DeliveryGate
}

var (
	_ core.RunnerObserver = (*GraphObserver)(nil)
	_ core.DeliveryGate   = (*GraphObserver)(nil)
	_ core.NodeTimer      = (*GraphObserver)(nil)
	_ core.BatchTap       = (*GraphObserver)(nil)
)

// NewGraphObserver wraps inner (which may be nil) with metric
// recording into m.
func NewGraphObserver(m *Metrics, inner core.RunnerObserver) *GraphObserver {
	o := &GraphObserver{m: m, inner: inner}
	if inner != nil {
		if g, ok := inner.(core.DeliveryGate); ok {
			o.gate = g
		}
	}
	return o
}

// NodeResult implements core.RunnerObserver.
func (o *GraphObserver) NodeResult(nodeID string, err error) {
	if err != nil {
		nm := o.m.Node(nodeID)
		nm.Errors.Inc()
		if errors.Is(err, core.ErrPanicked) {
			nm.Panics.Inc()
		}
	}
	if o.inner != nil {
		o.inner.NodeResult(nodeID, err)
	}
}

// SourceExhausted implements core.RunnerObserver.
func (o *GraphObserver) SourceExhausted(nodeID string) {
	if o.inner != nil {
		o.inner.SourceExhausted(nodeID)
	}
}

// SourceRestarted implements core.RunnerObserver.
func (o *GraphObserver) SourceRestarted(nodeID string, attempt int) {
	o.m.Node(nodeID).Restarts.Inc()
	if o.inner != nil {
		o.inner.SourceRestarted(nodeID, attempt)
	}
}

// NodeTimed implements core.NodeTimer.
func (o *GraphObserver) NodeTimed(nodeID string, d time.Duration, _ error) {
	o.m.Node(nodeID).ProcessNs.ObserveDuration(d)
}

// Allow implements core.DeliveryGate: the inner gate (the breaker)
// decides; refusals are counted as dropped spans.
func (o *GraphObserver) Allow(nodeID string) bool {
	if o.gate == nil || o.gate.Allow(nodeID) {
		return true
	}
	o.m.SpansDropped.Inc()
	o.m.Node(nodeID).Drops.Inc()
	return false
}

// Tap is a core.TapFunc counting every emission globally and per node.
// It fires on both the sync and async propagation paths — unlike the
// runner-fed hooks above, which only see async traffic.
func (o *GraphObserver) Tap(componentID string, _ core.Sample) {
	o.m.SpansEmitted.Inc()
	o.m.Node(componentID).Emissions.Inc()
}

// NeedsSync implements core.BatchTap: counters never require
// synchronous delivery.
func (o *GraphObserver) NeedsSync(string, core.Sample) bool { return false }

// TapBatch implements core.BatchTap: aggregate the burst per component
// so the global counter takes one atomic add per flush and each node's
// counter one add per component, instead of two string-keyed updates
// per emission.
func (o *GraphObserver) TapBatch(events []core.TapEvent) {
	o.m.SpansEmitted.Add(uint64(len(events)))
	// A burst touches a handful of components; a linear scan over a
	// stack buffer beats a map here.
	var agg [8]struct {
		id string
		n  uint64
	}
	used := 0
	for i := range events {
		id := events[i].ComponentID
		found := false
		for j := 0; j < used; j++ {
			if agg[j].id == id {
				agg[j].n++
				found = true
				break
			}
		}
		if found {
			continue
		}
		if used == len(agg) {
			// Overflow: flush the fullest slot semantics aren't needed —
			// just count this one directly.
			o.m.Node(id).Emissions.Inc()
			continue
		}
		agg[used].id = id
		agg[used].n = 1
		used++
	}
	for j := 0; j < used; j++ {
		o.m.Node(agg[j].id).Emissions.Add(agg[j].n)
	}
}
