package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
)

// Label values must be escaped per the Prometheus exposition format:
// backslash, double quote and newline get backslash escapes — and
// nothing else does. strconv.Quote-style \t or \xNN escapes are
// invalid exposition and must not appear.
func TestPrometheusLabelEscaping(t *testing.T) {
	m := New()
	hostile := "node\"with\\every\nhostile\tbyte\x01é"
	m.Node(hostile).Emissions.Add(1)
	m.ProviderTransition("state\"q\\b\nnl")

	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()

	// The three escapable bytes come out escaped...
	if !strings.Contains(out, `node="node\"with\\every\nhostile`) {
		t.Fatalf("node label not escaped correctly:\n%s", out)
	}
	if !strings.Contains(out, `state="state\"q\\b\nnl"`) {
		t.Fatalf("state label not escaped correctly:\n%s", out)
	}
	// ...while tab, control bytes and UTF-8 pass through raw: a \t or
	// \x escape sequence would be read back literally by a scraper.
	if strings.Contains(out, `\t`) || strings.Contains(out, `\x01`) {
		t.Fatalf("over-escaped label value (invalid exposition):\n%s", out)
	}
	if !strings.Contains(out, "hostile\tbyte\x01é") {
		t.Fatalf("tab/control/UTF-8 bytes must pass through raw:\n%s", out)
	}
	// No label value may leak an unescaped newline: every exposition
	// line must be a complete sample or comment.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition (unescaped newline leaked):\n%s", out)
		}
	}
}

func TestRulesCountersExposed(t *testing.T) {
	m := New()
	m.RulesEngaged.Add(3)
	m.RulesDisengaged.Add(2)
	m.RulesQuarantined.Inc()
	m.RulesRolledBack.Inc()
	m.RulesDeferred.Add(5)
	m.E2ELatencyNs.ObserveDuration(3 * time.Millisecond)

	var b strings.Builder
	WritePrometheus(&b, m)
	out := b.String()
	for _, want := range []string{
		"perpos_rules_engaged_total 3",
		"perpos_rules_disengaged_total 2",
		"perpos_rules_quarantined_total 1",
		"perpos_rules_rolled_back_total 1",
		"perpos_rules_deferred_total 5",
		"# TYPE perpos_e2e_latency_ns histogram",
		"perpos_e2e_latency_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// The JSON snapshot carries the same families.
	raw, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	rules, ok := snap["rules"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot has no rules section: %v", snap)
	}
	if rules["engaged"].(float64) != 3 || rules["deferred"].(float64) != 5 {
		t.Fatalf("rules snapshot wrong: %v", rules)
	}
	if _, ok := snap["e2e_latency_ns"]; !ok {
		t.Fatalf("snapshot has no e2e_latency_ns: %v", snap)
	}
}

// span wraps a sample with a stamped SpanRecord.
func span(node string, enter, exit time.Time) core.Sample {
	s := core.NewSample("k", nil, exit)
	return s.WithAttr(TraceAttr, SpanRecord{Node: node, Enter: enter, Exit: exit})
}

func TestTreeLatency(t *testing.T) {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// Root exit at +10ms, earliest enter at -5ms two levels down.
	tree := &channel.DataTree{Root: &channel.TreeNode{
		Sample: span("sink", base, base.Add(10*time.Millisecond)),
		Children: []*channel.TreeNode{
			{Sample: span("mid", base.Add(-2*time.Millisecond), base.Add(2*time.Millisecond)),
				Children: []*channel.TreeNode{
					{Sample: span("src", base.Add(-5*time.Millisecond), base)},
				}},
		},
	}}
	d, ok := TreeLatency(tree)
	if !ok || d != 15*time.Millisecond {
		t.Fatalf("TreeLatency = %v,%v, want 15ms", d, ok)
	}

	// Untraced root: cheap early exit.
	if _, ok := TreeLatency(&channel.DataTree{Root: &channel.TreeNode{Sample: core.NewSample("k", nil, base)}}); ok {
		t.Fatal("TreeLatency reported a latency for an untraced tree")
	}
	if _, ok := TreeLatency(nil); ok {
		t.Fatal("TreeLatency(nil) reported ok")
	}
	if _, ok := TreeLatency(&channel.DataTree{}); ok {
		t.Fatal("TreeLatency(empty) reported ok")
	}

	// Clock skew (root exit before earliest enter) is rejected rather
	// than reported as a negative duration.
	skew := &channel.DataTree{Root: &channel.TreeNode{
		Sample: span("sink", base, base),
		Children: []*channel.TreeNode{
			{Sample: span("src", base.Add(time.Hour), base.Add(time.Hour))},
		},
	}}
	if d, ok := TreeLatency(skew); ok && d < 0 {
		t.Fatalf("negative latency %v reported", d)
	}

	// Untraced children don't disturb the computation.
	mixed := &channel.DataTree{Root: &channel.TreeNode{
		Sample: span("sink", base, base.Add(time.Millisecond)),
		Children: []*channel.TreeNode{
			{Sample: core.NewSample("k", nil, base)},
		},
	}}
	if d, ok := TreeLatency(mixed); !ok || d != time.Millisecond {
		t.Fatalf("mixed tree latency = %v,%v, want 1ms", d, ok)
	}
}
