package obs

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"perpos/internal/core"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count)
	}
	if s.Sum != 500500 {
		t.Errorf("sum = %d, want 500500", s.Sum)
	}
	if s.Max != 1000 {
		t.Errorf("max = %d, want 1000", s.Max)
	}
	// Quantiles are log2-bucket upper bounds: within 2x above the true
	// value, never below it.
	if s.P50 < 500 || s.P50 > 1024 {
		t.Errorf("p50 = %d, want in [500, 1024]", s.P50)
	}
	if s.P99 < 990 || s.P99 > 1024 {
		t.Errorf("p99 = %d, want in [990, 1024]", s.P99)
	}
	if s.Mean < 500 || s.Mean > 501 {
		t.Errorf("mean = %f, want ~500.5", s.Mean)
	}
}

// TestBucketOfBoundaries pins the documented bucket contract at its
// boundaries: bucket 0 holds value <= 1, bucket i holds
// 2^(i-1) < value <= 2^i. Exact powers of two sit in the bucket whose
// upper bound they equal — the regression here was bits.Len64(v)
// pushing them one bucket up.
func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-1 << 40, 0}, // negatives clamp into bucket 0
		{-1, 0},
		{0, 0},
		{1, 0}, // documented: bucket 0 holds value <= 1
		{2, 1}, // 2^1 at its own bucket's upper bound
		{3, 2},
		{4, 2}, // 2^2
		{5, 3},
		{8, 3},  // 2^3
		{9, 4},  // just past 2^3
		{15, 4}, // just under 2^4
		{16, 4}, // 2^4
		{17, 5},
		{1 << 20, 20},
		{(1 << 20) + 1, 21},
		{1 << 34, 34},
		{1 << 35, 35},              // last regular bucket
		{(1 << 35) + 1, 35},        // overflow clamps to the last bucket
		{1 << 62, histBuckets - 1}, // deep overflow
	}
	for _, tc := range cases {
		if got := bucketOf(tc.v); got != tc.want {
			t.Errorf("bucketOf(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

// TestQuantileUpperBounds verifies quantile estimates are bucket upper
// bounds — at least the true value, at most twice it — including for
// values of exactly 1 and exact powers of two.
func TestQuantileUpperBounds(t *testing.T) {
	cases := []struct {
		observe []int64
		want    int64 // p50 == the single bucket's upper bound
	}{
		{[]int64{0}, 1},
		{[]int64{1}, 1}, // ones report as 1, not 0
		{[]int64{2}, 2}, // powers of two report exactly, not doubled
		{[]int64{4}, 4},
		{[]int64{1024}, 1024},
		{[]int64{3}, 4},
		{[]int64{1000}, 1024},
	}
	for _, tc := range cases {
		var h Histogram
		for _, v := range tc.observe {
			h.Observe(v)
		}
		if got := h.Snapshot().P50; got != tc.want {
			t.Errorf("P50 after observing %v = %d, want %d", tc.observe, got, tc.want)
		}
	}
}

func TestHistogramEdgeValues(t *testing.T) {
	var h Histogram
	h.Observe(-5)          // clamped into bucket 0
	h.Observe(0)           // bucket 0
	h.Observe(1 << 62)     // overflow bucket
	h.ObserveDuration(3e6) // 3ms in ns
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count = %d, want 4", s.Count)
	}
	if s.Max != 1<<62 {
		t.Errorf("max = %d, want 1<<62", s.Max)
	}
	if empty := new(Histogram).Snapshot(); empty.Count != 0 || empty.P50 != 0 {
		t.Errorf("zero histogram snapshot = %+v, want zeros", empty)
	}
}

func TestMetricsShardGauges(t *testing.T) {
	m := New()
	m.InitShards(4)
	if g := m.ShardLive(2); g == nil {
		t.Fatal("ShardLive(2) = nil inside range")
	} else {
		g.Inc()
		g.Inc()
	}
	if g := m.ShardLive(7); g != nil {
		t.Error("ShardLive(7) non-nil outside range")
	}
	if got := m.SessionsLive(); got != 2 {
		t.Errorf("SessionsLive = %d, want 2", got)
	}
	m.InitShards(4) // idempotent: gauges must survive
	if got := m.SessionsLive(); got != 2 {
		t.Errorf("SessionsLive after re-init = %d, want 2", got)
	}
}

func TestMetricsSnapshotShape(t *testing.T) {
	m := New()
	m.InitShards(2)
	m.SpansEmitted.Add(3)
	m.Node("gps").Emissions.Inc()
	m.ProviderTransition("AVAILABLE")
	m.ObserveTreeDepth(3)
	m.CheckpointAppend("s", 128, time.Millisecond, nil)
	m.CheckpointAppend("s", 0, 0, errors.New("boom"))

	snap := m.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
	for _, key := range []string{
		`"spans_emitted":3`, `"sessions_live":0`, `"shard_live":[0,0]`,
		`"provider_transitions":{"AVAILABLE":1}`, `"tree_depth"`, `"nodes"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON missing %s:\n%s", key, data)
		}
	}
	ck := snap["checkpoint"].(map[string]any)
	if ck["writes"].(uint64) != 1 || ck["errors"].(uint64) != 1 || ck["bytes"].(uint64) != 128 {
		t.Errorf("checkpoint block = %v, want writes=1 errors=1 bytes=128", ck)
	}
	if ids := m.NodeIDs(); len(ids) != 1 || ids[0] != "gps" {
		t.Errorf("NodeIDs = %v, want [gps]", ids)
	}
}

// gatedObserver is a RunnerObserver + DeliveryGate test double.
type gatedObserver struct {
	mu      sync.Mutex
	refused string
	results []string
}

func (g *gatedObserver) NodeResult(node string, err error) {
	g.mu.Lock()
	g.results = append(g.results, fmt.Sprintf("%s:%v", node, err != nil))
	g.mu.Unlock()
}
func (g *gatedObserver) SourceExhausted(string)      {}
func (g *gatedObserver) SourceRestarted(string, int) {}
func (g *gatedObserver) Allow(node string) bool      { return node != g.refused }

func TestGraphObserverSeams(t *testing.T) {
	m := New()
	inner := &gatedObserver{refused: "bad"}
	o := NewGraphObserver(m, inner)

	// Gate: refusals counted globally and per node, inner consulted.
	if o.Allow("bad") {
		t.Error("Allow(bad) = true, want inner refusal to pass through")
	}
	if !o.Allow("good") {
		t.Error("Allow(good) = false")
	}
	if m.SpansDropped.Value() != 1 || m.Node("bad").Drops.Value() != 1 {
		t.Errorf("drops global=%d node=%d, want 1/1",
			m.SpansDropped.Value(), m.Node("bad").Drops.Value())
	}

	// Results: errors and contained panics counted; inner still sees all.
	o.NodeResult("fuse", nil)
	o.NodeResult("fuse", errors.New("plain"))
	o.NodeResult("fuse", fmt.Errorf("wrapped: %w", core.ErrPanicked))
	if got := m.Node("fuse").Errors.Value(); got != 2 {
		t.Errorf("fuse errors = %d, want 2", got)
	}
	if got := m.Node("fuse").Panics.Value(); got != 1 {
		t.Errorf("fuse panics = %d, want 1", got)
	}
	if len(inner.results) != 3 {
		t.Errorf("inner saw %d results, want 3", len(inner.results))
	}

	o.SourceRestarted("gps", 2)
	if got := m.Node("gps").Restarts.Value(); got != 1 {
		t.Errorf("gps restarts = %d, want 1", got)
	}

	o.NodeTimed("fuse", 2*time.Millisecond, nil)
	if got := m.Node("fuse").ProcessNs.Count(); got != 1 {
		t.Errorf("fuse timings = %d, want 1", got)
	}

	// Tap counts emissions on any path.
	o.Tap("gps", core.Sample{})
	o.Tap("gps", core.Sample{})
	if m.SpansEmitted.Value() != 2 || m.Node("gps").Emissions.Value() != 2 {
		t.Errorf("emissions global=%d node=%d, want 2/2",
			m.SpansEmitted.Value(), m.Node("gps").Emissions.Value())
	}
}

func TestGraphObserverNilInner(t *testing.T) {
	m := New()
	o := NewGraphObserver(m, nil)
	if !o.Allow("any") {
		t.Error("Allow without inner gate must be open")
	}
	o.NodeResult("n", errors.New("x")) // must not panic
	o.SourceExhausted("n")
	o.SourceRestarted("n", 1)
	if got := m.Node("n").Errors.Value(); got != 1 {
		t.Errorf("errors = %d, want 1", got)
	}
}
