// Package obs is the observability subsystem: the translucency story
// of the paper applied to the middleware's own runtime. Where the
// PSL/PCL let a developer inspect the positioning PROCESS, obs lets an
// operator inspect the positioning SYSTEM — per-node throughput and
// process latency, channel data-tree depth, provider availability
// churn, supervisor reroute counts, checkpoint cost — without stopping
// it.
//
// The design point is cost: every hot-path hook is a handful of atomic
// operations (see Counter/Gauge/Histogram in metrics.go); nothing in
// this package takes a lock on an emission path. Hooks ride the seams
// the engine already has — graph taps, core.RunnerObserver,
// channel.WithTreeObserver, checkpoint.Options.OnAppend — so a session
// without a Metrics hub pays nothing at all.
//
// Export is pull-based: Metrics.Snapshot marshals to the expvar-style
// JSON served by Handler (http.go) next to net/http/pprof.
package obs

import (
	"sort"
	"strconv"
	"sync"
	"time"
)

// NodeMetrics aggregates one graph node's counters. Per-session graphs
// share the hub, so a node ID like "gps" accumulates across every
// session instantiated from the blueprint — the per-component view of
// the whole process, not of one target.
type NodeMetrics struct {
	// Emissions counts samples the node emitted (graph tap).
	Emissions Counter
	// Errors counts failed process/step outcomes; Panics the subset
	// that were contained panics.
	Errors Counter
	Panics Counter
	// Drops counts deliveries the breaker's gate refused while the node
	// was quarantined.
	Drops Counter
	// Restarts counts successful source restarts.
	Restarts Counter
	// ProcessNs is the wall-clock process/step latency distribution in
	// nanoseconds (async runner only: the sync Step path has no timer).
	ProcessNs Histogram
}

// nodeSnapshot is the JSON view of a NodeMetrics.
type nodeSnapshot struct {
	Emissions uint64            `json:"emissions"`
	Errors    uint64            `json:"errors,omitempty"`
	Panics    uint64            `json:"panics,omitempty"`
	Drops     uint64            `json:"drops,omitempty"`
	Restarts  uint64            `json:"restarts,omitempty"`
	ProcessNs HistogramSnapshot `json:"process_ns"`
}

// Metrics is the hub: one per process (or per manager under test),
// shared by every session, shard and store that reports into it. All
// methods are safe for concurrent use. The zero value is NOT ready —
// use New.
type Metrics struct {
	// SpansEmitted counts every stamped emission anywhere in the
	// instrumented graphs (the tap); SpansDropped counts gate-refused
	// deliveries.
	SpansEmitted Counter
	SpansDropped Counter

	// Session-manager lifecycle.
	SessionsCreated Counter
	SessionsEvicted Counter
	SessionsResumed Counter

	// Supervisor reroute churn: engage covers both fresh engagements
	// and rule switches; disengage is a full restore.
	SupervisorEngaged    Counter
	SupervisorDisengaged Counter

	// Checkpoint write cost.
	CheckpointWrites Counter
	CheckpointErrors Counter
	CheckpointBytes  Counter
	CheckpointNs     Histogram

	// Rolling-upgrade progress (runtime.Manager.Rollout): rollout
	// lifecycle counts plus per-session migration outcomes. Reverted
	// counts canary sessions migrated back after a gate failure; Failed
	// counts sessions whose migration errored (they remain on their old
	// revision — a failed migration rolls the graph back in place).
	RolloutsStarted    Counter
	RolloutsCompleted  Counter
	RolloutsRolledBack Counter
	RolloutUpgraded    Counter
	RolloutReverted    Counter
	RolloutFailed      Counter

	// Rules-engine lifecycle (internal/rules): engagements,
	// disengagements, flap-damping quarantines, probation rollbacks and
	// deferred (arbitration-blocked) engagements across all sessions.
	RulesEngaged     Counter
	RulesDisengaged  Counter
	RulesQuarantined Counter
	RulesRolledBack  Counter
	RulesDeferred    Counter

	// Remote link traffic (internal/remote): samples shipped over an
	// Uplink and samples shed because the peer was unreachable past the
	// immediate-retry + backoff gate. Without these an unreachable peer
	// drops positioning data silently.
	RemoteSent    Counter
	RemoteDropped Counter

	// Cluster distribution (internal/cluster): completed and failed
	// session handoffs, node-death failovers, sessions resurrected on
	// survivors, sessions moved by join/leave rebalancing, and position
	// queries served from the router's last-known cache while the
	// owning node was unreachable or mid-handoff (the degradation
	// contract: stale beats erroring).
	ClusterHandoffs      Counter
	ClusterHandoffFailed Counter
	ClusterFailovers     Counter
	ClusterResurrected   Counter
	ClusterRebalanced    Counter
	ClusterStaleServed   Counter
	// ClusterHandoffNs is the end-to-end handoff latency distribution
	// (pause → checkpoint → ship → resume → route flip) in nanoseconds.
	ClusterHandoffNs Histogram

	// TreeDepth is the distribution of channel data-tree depths (PCL).
	TreeDepth Histogram

	// E2ELatencyNs is the end-to-end pipeline latency distribution in
	// nanoseconds, derived from trace spans: for each delivery at a
	// sink, root span exit minus the earliest span enter in the
	// sample's derivation tree. Populated only for sessions running
	// with tracing instrumentation.
	E2ELatencyNs Histogram

	// shardLive is one live-session gauge per manager shard, sized by
	// InitShards. The slice itself is written once before traffic.
	shardMu   sync.Mutex
	shardLive []*Gauge

	// nodes maps node ID -> *NodeMetrics, populated on first touch.
	nodes sync.Map

	// providerTransitions maps availability-state name -> *Counter of
	// transitions INTO that state.
	providerTransitions sync.Map

	// revisionLive maps blueprint revision number -> *Gauge of sessions
	// currently running that revision — the fleet's upgrade progress at
	// a glance.
	revisionLive sync.Map

	// remoteBackoff maps uplink ID -> *Gauge holding the current redial
	// backoff in nanoseconds (0 only before first use; the base backoff
	// once connected).
	remoteBackoff sync.Map

	// clusterNodeSessions maps cluster-node ID -> *Gauge of sessions the
	// router currently routes to that node; clusterNodeUp maps node ID
	// -> *Gauge that is 1 while the node's breaker is closed, 0 while
	// quarantined or dead.
	clusterNodeSessions sync.Map
	clusterNodeUp       sync.Map
}

// New returns an empty hub.
func New() *Metrics { return &Metrics{} }

// Node returns (creating on first use) the named node's metrics.
func (m *Metrics) Node(id string) *NodeMetrics {
	if v, ok := m.nodes.Load(id); ok {
		return v.(*NodeMetrics)
	}
	v, _ := m.nodes.LoadOrStore(id, &NodeMetrics{})
	return v.(*NodeMetrics)
}

// InitShards sizes the per-shard live-session gauges. Idempotent per
// size; the manager calls it once at construction, before traffic.
func (m *Metrics) InitShards(n int) {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	if len(m.shardLive) == n {
		return
	}
	gauges := make([]*Gauge, n)
	for i := range gauges {
		gauges[i] = &Gauge{}
	}
	m.shardLive = gauges
}

// ShardLive returns shard i's live-session gauge, or nil when i is out
// of the InitShards range.
func (m *Metrics) ShardLive(i int) *Gauge {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	if i < 0 || i >= len(m.shardLive) {
		return nil
	}
	return m.shardLive[i]
}

// SessionsLive sums the shard gauges.
func (m *Metrics) SessionsLive() int64 {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	var n int64
	for _, g := range m.shardLive {
		n += g.Value()
	}
	return n
}

// ProviderTransition counts one availability transition into the named
// JSR-179 state ("AVAILABLE", "TEMPORARILY_UNAVAILABLE", ...).
func (m *Metrics) ProviderTransition(state string) {
	if v, ok := m.providerTransitions.Load(state); ok {
		v.(*Counter).Inc()
		return
	}
	v, _ := m.providerTransitions.LoadOrStore(state, &Counter{})
	v.(*Counter).Inc()
}

// RevisionLive returns (creating on first use) the live-session gauge
// for one blueprint revision. The manager moves sessions between
// revision gauges as they are created, migrated, resumed and retired.
func (m *Metrics) RevisionLive(rev int) *Gauge {
	if v, ok := m.revisionLive.Load(rev); ok {
		return v.(*Gauge)
	}
	v, _ := m.revisionLive.LoadOrStore(rev, &Gauge{})
	return v.(*Gauge)
}

// RemoteBackoff returns (creating on first use) the named uplink's
// current-backoff gauge, in nanoseconds.
func (m *Metrics) RemoteBackoff(uplink string) *Gauge {
	if v, ok := m.remoteBackoff.Load(uplink); ok {
		return v.(*Gauge)
	}
	v, _ := m.remoteBackoff.LoadOrStore(uplink, &Gauge{})
	return v.(*Gauge)
}

// ClusterNodeSessions returns (creating on first use) the gauge of
// sessions routed to one cluster node.
func (m *Metrics) ClusterNodeSessions(node string) *Gauge {
	if v, ok := m.clusterNodeSessions.Load(node); ok {
		return v.(*Gauge)
	}
	v, _ := m.clusterNodeSessions.LoadOrStore(node, &Gauge{})
	return v.(*Gauge)
}

// ClusterNodeUp returns (creating on first use) the up/down gauge for
// one cluster node: 1 healthy, 0 quarantined or dead.
func (m *Metrics) ClusterNodeUp(node string) *Gauge {
	if v, ok := m.clusterNodeUp.Load(node); ok {
		return v.(*Gauge)
	}
	v, _ := m.clusterNodeUp.LoadOrStore(node, &Gauge{})
	return v.(*Gauge)
}

// ObserveTreeDepth records one channel data-tree depth.
func (m *Metrics) ObserveTreeDepth(depth int) {
	m.TreeDepth.Observe(int64(depth))
}

// CheckpointAppend records one durable append. Its signature matches
// checkpoint.Options.OnAppend so callers wire the store directly:
//
//	checkpoint.Options{OnAppend: metrics.CheckpointAppend}
func (m *Metrics) CheckpointAppend(_ string, bytes int, d time.Duration, err error) {
	if err != nil {
		m.CheckpointErrors.Inc()
		return
	}
	m.CheckpointWrites.Inc()
	m.CheckpointBytes.Add(uint64(bytes))
	m.CheckpointNs.ObserveDuration(d)
}

// Snapshot renders the hub as a JSON-marshalable tree — the /metrics
// payload. It is a point-in-time read under concurrent traffic: values
// are individually atomic but not mutually consistent, which is the
// usual (and sufficient) monitoring contract.
func (m *Metrics) Snapshot() map[string]any {
	nodes := make(map[string]nodeSnapshot)
	m.nodes.Range(func(k, v any) bool {
		nm := v.(*NodeMetrics)
		nodes[k.(string)] = nodeSnapshot{
			Emissions: nm.Emissions.Value(),
			Errors:    nm.Errors.Value(),
			Panics:    nm.Panics.Value(),
			Drops:     nm.Drops.Value(),
			Restarts:  nm.Restarts.Value(),
			ProcessNs: nm.ProcessNs.Snapshot(),
		}
		return true
	})

	transitions := make(map[string]uint64)
	m.providerTransitions.Range(func(k, v any) bool {
		transitions[k.(string)] = v.(*Counter).Value()
		return true
	})

	revisions := make(map[string]int64)
	m.revisionLive.Range(func(k, v any) bool {
		revisions[strconv.Itoa(k.(int))] = v.(*Gauge).Value()
		return true
	})

	m.shardMu.Lock()
	shardLive := make([]int64, len(m.shardLive))
	var live int64
	for i, g := range m.shardLive {
		shardLive[i] = g.Value()
		live += g.Value()
	}
	m.shardMu.Unlock()

	backoffs := make(map[string]int64)
	m.remoteBackoff.Range(func(k, v any) bool {
		backoffs[k.(string)] = v.(*Gauge).Value()
		return true
	})
	nodeSessions := make(map[string]int64)
	m.clusterNodeSessions.Range(func(k, v any) bool {
		nodeSessions[k.(string)] = v.(*Gauge).Value()
		return true
	})
	nodeUp := make(map[string]int64)
	m.clusterNodeUp.Range(func(k, v any) bool {
		nodeUp[k.(string)] = v.(*Gauge).Value()
		return true
	})

	return map[string]any{
		"spans_emitted":         m.SpansEmitted.Value(),
		"spans_dropped":         m.SpansDropped.Value(),
		"sessions_created":      m.SessionsCreated.Value(),
		"sessions_evicted":      m.SessionsEvicted.Value(),
		"sessions_resumed":      m.SessionsResumed.Value(),
		"sessions_live":         live,
		"shard_live":            shardLive,
		"supervisor_engaged":    m.SupervisorEngaged.Value(),
		"supervisor_disengaged": m.SupervisorDisengaged.Value(),
		"provider_transitions":  transitions,
		"revision_live":         revisions,
		"rollout": map[string]any{
			"started":     m.RolloutsStarted.Value(),
			"completed":   m.RolloutsCompleted.Value(),
			"rolled_back": m.RolloutsRolledBack.Value(),
			"upgraded":    m.RolloutUpgraded.Value(),
			"reverted":    m.RolloutReverted.Value(),
			"failed":      m.RolloutFailed.Value(),
		},
		"checkpoint": map[string]any{
			"writes":   m.CheckpointWrites.Value(),
			"errors":   m.CheckpointErrors.Value(),
			"bytes":    m.CheckpointBytes.Value(),
			"write_ns": m.CheckpointNs.Snapshot(),
		},
		"remote": map[string]any{
			"sent":       m.RemoteSent.Value(),
			"dropped":    m.RemoteDropped.Value(),
			"backoff_ns": backoffs,
		},
		"cluster": map[string]any{
			"handoffs":       m.ClusterHandoffs.Value(),
			"handoff_failed": m.ClusterHandoffFailed.Value(),
			"failovers":      m.ClusterFailovers.Value(),
			"resurrected":    m.ClusterResurrected.Value(),
			"rebalanced":     m.ClusterRebalanced.Value(),
			"stale_served":   m.ClusterStaleServed.Value(),
			"handoff_ns":     m.ClusterHandoffNs.Snapshot(),
			"node_sessions":  nodeSessions,
			"node_up":        nodeUp,
		},
		"rules": map[string]any{
			"engaged":     m.RulesEngaged.Value(),
			"disengaged":  m.RulesDisengaged.Value(),
			"quarantined": m.RulesQuarantined.Value(),
			"rolled_back": m.RulesRolledBack.Value(),
			"deferred":    m.RulesDeferred.Value(),
		},
		"tree_depth":     m.TreeDepth.Snapshot(),
		"e2e_latency_ns": m.E2ELatencyNs.Snapshot(),
		"nodes":          nodes,
	}
}

// NodeIDs returns the IDs with per-node metrics, sorted (inspection
// and tests).
func (m *Metrics) NodeIDs() []string {
	var out []string
	m.nodes.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}
