package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
)

// Tracing reuses the PSL's logical-time machinery as the span tree:
// every instrumented component stamps each emission with a SpanRecord
// (node, logical clock, wall enter/exit) carried in the sample's
// Attrs, and the PCL data tree — which already groups, by logical
// time, every intermediate datum that contributed to a channel output
// (Fig. 4) — IS the end-to-end trace of that output. No separate trace
// store, no ID propagation: the causality the middleware maintains for
// translucency doubles as the trace graph.

// TraceAttr is the sample attribute key carrying a SpanRecord.
const TraceAttr = "obs.span"

// TraceFeatureName is the Component Feature name of TraceFeature.
const TraceFeatureName = "obs.trace"

// SpanRecord is one component's processing span for one emission.
type SpanRecord struct {
	// Node is the emitting component.
	Node string `json:"node"`
	// Logical is the emission's logical clock value on that component.
	Logical core.LogicalTime `json:"logical"`
	// Enter is when the component began consuming the inputs that led
	// to this emission (for sources: equal to Exit).
	Enter time.Time `json:"enter"`
	// Exit is when the emission left the component.
	Exit time.Time `json:"exit"`
}

// Duration is the wall-clock span length.
func (r SpanRecord) Duration() time.Duration { return r.Exit.Sub(r.Enter) }

// TraceOf extracts the span record stamped on a sample.
func TraceOf(s core.Sample) (SpanRecord, bool) {
	v, ok := s.Attr(TraceAttr)
	if !ok {
		return SpanRecord{}, false
	}
	r, ok := v.(SpanRecord)
	return r, ok
}

// TraceFeature is the Trace Component Feature: a ConsumeHook records
// when input began arriving, a ProduceHook stamps each emission with
// the resulting SpanRecord. One instance per node (Bind captures the
// host); attach via InstrumentGraph.
//
// The logical time stamped is host.Clock()+1: produce hooks run just
// before the engine increments the clock and stamps the sample, so the
// emission flowing through the hook is exactly the next clock value.
type TraceFeature struct {
	now   func() time.Time
	host  core.ClockedHost
	enter time.Time
}

// TraceOption configures a TraceFeature.
type TraceOption func(*TraceFeature)

// WithTraceClock substitutes the wall clock (tests).
func WithTraceClock(now func() time.Time) TraceOption {
	return func(f *TraceFeature) {
		if now != nil {
			f.now = now
		}
	}
}

// NewTraceFeature returns an unbound trace feature.
func NewTraceFeature(opts ...TraceOption) *TraceFeature {
	f := &TraceFeature{now: time.Now}
	for _, opt := range opts {
		opt(f)
	}
	return f
}

var (
	_ core.ConsumeHook     = (*TraceFeature)(nil)
	_ core.ProduceHook     = (*TraceFeature)(nil)
	_ core.BindableFeature = (*TraceFeature)(nil)
)

// FeatureName implements core.Feature.
func (f *TraceFeature) FeatureName() string { return TraceFeatureName }

// Bind implements core.BindableFeature.
func (f *TraceFeature) Bind(host core.FeatureHost) {
	if ch, ok := host.(core.ClockedHost); ok {
		f.host = ch
	}
}

// Consume implements core.ConsumeHook: the first input after an
// emission opens the wall-clock window (merge components consume
// several inputs per output; the window spans them all).
func (f *TraceFeature) Consume(_ int, in core.Sample) (core.Sample, bool) {
	if f.enter.IsZero() {
		f.enter = f.now()
	}
	return in, true
}

// Produce implements core.ProduceHook: stamp and close the window.
func (f *TraceFeature) Produce(out core.Sample) (core.Sample, bool) {
	exit := f.now()
	enter := f.enter
	if enter.IsZero() {
		enter = exit // source: no consume side
	}
	rec := SpanRecord{Exit: exit, Enter: enter}
	if f.host != nil {
		rec.Node = f.host.Component().ID()
		rec.Logical = f.host.Clock() + 1
	}
	f.enter = time.Time{}
	return out.WithAttr(TraceAttr, rec), true
}

// InstrumentGraph attaches a TraceFeature to every node that does not
// already carry one. Attach while the graph is quiescent (features are
// graph structure).
func InstrumentGraph(g *core.Graph, opts ...TraceOption) error {
	for _, n := range g.Nodes() {
		if n.HasCapability(TraceFeatureName) {
			continue
		}
		if err := n.AttachFeature(NewTraceFeature(opts...)); err != nil {
			return err
		}
	}
	return nil
}

// ChannelTrace is the Trace Channel Feature: it retains the data tree
// of the channel's most recent delivery so inspection tooling can
// format the end-to-end trace after a replay. Delivered trees are
// pooled by the layer, so Apply detaches its copy — tracing trades one
// deep copy per delivery for post-hoc inspectability, which is the
// documented cost of enabling it.
type ChannelTrace struct {
	mu   sync.Mutex
	last *channel.DataTree
}

// NewChannelTrace returns an empty channel trace feature.
func NewChannelTrace() *ChannelTrace { return &ChannelTrace{} }

var _ channel.Feature = (*ChannelTrace)(nil)

// FeatureName implements channel.Feature.
func (c *ChannelTrace) FeatureName() string { return TraceFeatureName }

// Apply implements channel.Feature.
func (c *ChannelTrace) Apply(tree *channel.DataTree) {
	detached := tree.Detach()
	c.mu.Lock()
	c.last = detached
	c.mu.Unlock()
}

// Last returns the most recent delivery's tree.
func (c *ChannelTrace) Last() (*channel.DataTree, bool) {
	c.mu.Lock()
	t := c.last
	c.mu.Unlock()
	return t, t != nil
}

// TreeLatency computes the end-to-end latency of one delivery from its
// data tree: the root span's exit minus the earliest span enter found
// anywhere in the tree — the same total FormatTrace prints, without the
// formatting. It returns false when the root sample carries no span
// (graph not instrumented), making the un-traced case a cheap early
// exit, or when clocks produced a negative total.
func TreeLatency(t *channel.DataTree) (time.Duration, bool) {
	if t == nil || t.Root == nil {
		return 0, false
	}
	root, ok := TraceOf(t.Root.Sample)
	if !ok {
		return 0, false
	}
	earliest := treeEarliestEnter(t.Root, root.Enter)
	if root.Exit.Before(earliest) {
		return 0, false
	}
	return root.Exit.Sub(earliest), true
}

// treeEarliestEnter walks the tree for the earliest stamped span enter.
func treeEarliestEnter(n *channel.TreeNode, earliest time.Time) time.Time {
	for _, c := range n.Children {
		if r, ok := TraceOf(c.Sample); ok && r.Enter.Before(earliest) {
			earliest = r.Enter
		}
		earliest = treeEarliestEnter(c, earliest)
	}
	return earliest
}

// FormatTrace renders a data tree as an indented end-to-end trace, one
// line per datum: component, logical time, kind, and — when the sample
// was stamped by a TraceFeature — the wall-clock processing span. The
// last line totals the root's exit minus the earliest stamped enter:
// "where did this position spend its time".
func FormatTrace(t *channel.DataTree) string {
	if t == nil || t.Root == nil {
		return "(no delivery recorded)\n"
	}
	var b strings.Builder
	var earliest, rootExit time.Time
	var rec func(n *channel.TreeNode, depth int)
	rec = func(n *channel.TreeNode, depth int) {
		s := n.Sample
		fmt.Fprintf(&b, "%s%s logical=%d kind=%s", strings.Repeat("  ", depth), s.Source, s.Logical, s.Kind)
		if r, ok := TraceOf(s); ok {
			fmt.Fprintf(&b, " process=%s", r.Duration().Round(time.Microsecond))
			if earliest.IsZero() || r.Enter.Before(earliest) {
				earliest = r.Enter
			}
			if depth == 0 {
				rootExit = r.Exit
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	if !earliest.IsZero() && !rootExit.IsZero() {
		fmt.Fprintf(&b, "end-to-end: %s\n", rootExit.Sub(earliest).Round(time.Microsecond))
	}
	return b.String()
}
