package obs

import (
	"fmt"
	"testing"

	"perpos/internal/core"
)

func TestGraphObserverTapBatchAggregates(t *testing.T) {
	m := New()
	o := NewGraphObserver(m, nil)

	if o.NeedsSync("any", core.Sample{}) {
		t.Error("metrics counters must never demand sync delivery")
	}

	// A typical burst: a handful of components, repeated emissions.
	var events []core.TapEvent
	for i := 0; i < 10; i++ {
		events = append(events,
			core.TapEvent{ComponentID: "gps"},
			core.TapEvent{ComponentID: "parser"},
		)
	}
	events = append(events, core.TapEvent{ComponentID: "interp"})
	o.TapBatch(events)

	if got := m.SpansEmitted.Value(); got != 21 {
		t.Errorf("SpansEmitted = %d, want 21", got)
	}
	if got := m.Node("gps").Emissions.Value(); got != 10 {
		t.Errorf("gps emissions = %d, want 10", got)
	}
	if got := m.Node("parser").Emissions.Value(); got != 10 {
		t.Errorf("parser emissions = %d, want 10", got)
	}
	if got := m.Node("interp").Emissions.Value(); got != 1 {
		t.Errorf("interp emissions = %d, want 1", got)
	}
}

func TestGraphObserverTapBatchOverflow(t *testing.T) {
	m := New()
	o := NewGraphObserver(m, nil)

	// More distinct components than the stack aggregation buffer holds:
	// the overflow arm counts directly and must lose nothing.
	var events []core.TapEvent
	const comps = 12
	for i := 0; i < comps; i++ {
		id := fmt.Sprintf("comp-%d", i)
		events = append(events,
			core.TapEvent{ComponentID: id},
			core.TapEvent{ComponentID: id},
		)
	}
	o.TapBatch(events)

	if got := m.SpansEmitted.Value(); got != 2*comps {
		t.Errorf("SpansEmitted = %d, want %d", got, 2*comps)
	}
	total := uint64(0)
	for i := 0; i < comps; i++ {
		total += m.Node(fmt.Sprintf("comp-%d", i)).Emissions.Value()
	}
	if total != 2*comps {
		t.Errorf("summed node emissions = %d, want %d", total, 2*comps)
	}
}
