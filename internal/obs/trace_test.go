package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
)

// fakeClock returns a deterministic wall clock ticking 1ms per call.
func fakeClock() func() time.Time {
	var mu sync.Mutex
	t := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

// buildTraced wires src -> parser -> sink, instrumented with a fake
// clock, and returns the pieces.
func buildTraced(t *testing.T) (*core.Graph, *core.Sink) {
	t.Helper()
	g := core.New()
	src := &core.SliceSource{
		CompID: "src",
		Out:    core.OutputSpec{Kind: "raw"},
		Samples: []core.Sample{
			core.NewSample("raw", 1, time.Time{}),
			core.NewSample("raw", 2, time.Time{}),
			core.NewSample("raw", 3, time.Time{}),
		},
	}
	parser := core.NewTransform("parser", "raw", "parsed", func(in core.Sample) (core.Sample, bool) {
		out := in
		out.Kind = "parsed"
		return out, true
	})
	sink := core.NewSink("sink", []core.Kind{"parsed"})
	for _, c := range []core.Component{src, parser, sink} {
		if _, err := g.Add(c); err != nil {
			t.Fatalf("add %s: %v", c.ID(), err)
		}
	}
	if err := g.Connect("src", "parser", 0); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := g.Connect("parser", "sink", 0); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := InstrumentGraph(g, WithTraceClock(fakeClock())); err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return g, sink
}

func TestTraceFeatureStampsEmissions(t *testing.T) {
	g, sink := buildTraced(t)
	if _, err := g.Run(20); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sink.Received()
	if len(got) != 3 {
		t.Fatalf("sink received %d samples, want 3", len(got))
	}
	for i, s := range got {
		rec, ok := TraceOf(s)
		if !ok {
			t.Fatalf("sample %d carries no span record", i)
		}
		if rec.Node != "parser" {
			t.Errorf("sample %d span node = %q, want parser (last stamp wins)", i, rec.Node)
		}
		if rec.Logical != s.Logical {
			t.Errorf("sample %d span logical = %d, sample logical = %d", i, rec.Logical, s.Logical)
		}
		if rec.Exit.Before(rec.Enter) {
			t.Errorf("sample %d exit %v before enter %v", i, rec.Exit, rec.Enter)
		}
		if rec.Duration() <= 0 {
			t.Errorf("sample %d duration = %v, want > 0 under ticking clock", i, rec.Duration())
		}
	}
}

func TestInstrumentGraphIdempotent(t *testing.T) {
	g, _ := buildTraced(t)
	// A second pass must skip already-instrumented nodes, not error.
	if err := InstrumentGraph(g); err != nil {
		t.Fatalf("re-instrument: %v", err)
	}
	for _, n := range g.Nodes() {
		if !n.HasCapability(TraceFeatureName) {
			t.Errorf("node %s missing %s capability", n.ID(), TraceFeatureName)
		}
	}
}

func TestChannelTraceAndFormat(t *testing.T) {
	g, _ := buildTraced(t)
	layer := channel.NewLayer(g)
	defer layer.Close()

	ch, ok := layer.ChannelInto("sink", 0)
	if !ok {
		t.Fatal("no channel into sink")
	}
	ct := NewChannelTrace()
	if err := ch.AttachFeature(ct); err != nil {
		t.Fatalf("attach channel trace: %v", err)
	}
	if _, gotIt := ct.Last(); gotIt {
		t.Fatal("Last before any delivery should report false")
	}
	if _, err := g.Run(20); err != nil {
		t.Fatalf("run: %v", err)
	}

	tree, ok := ct.Last()
	if !ok {
		t.Fatal("no delivery recorded by channel trace")
	}
	out := FormatTrace(tree)
	for _, want := range []string{"parser", "src", "logical=", "process=", "end-to-end:"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted trace missing %q:\n%s", want, out)
		}
	}
	// The parser line is the root (depth 0), the src line indented under it.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[0], "parser ") {
		t.Errorf("first line = %q, want root parser span", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  src ") {
		t.Errorf("second line = %q, want indented src span", lines[1])
	}
}

func TestFormatTraceEmpty(t *testing.T) {
	if got := FormatTrace(nil); got != "(no delivery recorded)\n" {
		t.Errorf("FormatTrace(nil) = %q", got)
	}
	if got := FormatTrace(&channel.DataTree{}); got != "(no delivery recorded)\n" {
		t.Errorf("FormatTrace(empty) = %q", got)
	}
}

// TestGraphObserverCountsAsyncRun drives the instrumented graph through
// the async runner with the observer installed and checks the seams the
// sync path cannot reach (NodeTimer) plus tap-fed emission counts.
func TestGraphObserverCountsAsyncRun(t *testing.T) {
	g, sink := buildTraced(t)
	m := New()
	o := NewGraphObserver(m, nil)
	cancel := g.Tap(o.Tap)
	defer cancel()

	r := core.NewRunner(g, core.WithRunnerObserver(o))
	if err := r.Start(context.Background()); err != nil {
		t.Fatalf("start: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for sink.Len() < 3 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	if sink.Len() != 3 {
		t.Fatalf("sink received %d, want 3", sink.Len())
	}
	if got := m.Node("parser").Emissions.Value(); got != 3 {
		t.Errorf("parser emissions = %d, want 3", got)
	}
	if got := m.Node("src").Emissions.Value(); got != 3 {
		t.Errorf("src emissions = %d, want 3", got)
	}
	if m.SpansEmitted.Value() != 6 {
		t.Errorf("spans emitted = %d, want 6", m.SpansEmitted.Value())
	}
	// The async runner times every process/step call.
	if got := m.Node("parser").ProcessNs.Count(); got < 3 {
		t.Errorf("parser timings = %d, want >= 3", got)
	}
	if got := m.Node("src").ProcessNs.Count(); got < 3 {
		t.Errorf("src timings = %d, want >= 3", got)
	}
}
