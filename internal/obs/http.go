package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the hub: GET /metrics returns the Snapshot as
// indented JSON (expvar-style pull model), GET /metrics?format=prom or
// /metrics/prom returns the Prometheus text exposition (WritePrometheus),
// and the standard net/http/pprof endpoints hang under /debug/pprof/ so
// an operator can profile a live perpos-run next to its metrics. An
// explicit mux is used — nothing is registered on http.DefaultServeMux.
func Handler(m *Metrics) http.Handler {
	prom := func(w http.ResponseWriter) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, m)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prom" {
			prom(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.Snapshot())
	})
	mux.HandleFunc("/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		prom(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running metrics listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP server for the hub on addr (":0" picks a free
// port) and returns once the listener is bound, so Addr is immediately
// valid. Close releases it.
func Serve(addr string, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(m)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (with the real port for :0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
