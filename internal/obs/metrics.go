package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. All methods are
// lock-free and safe for concurrent use; the zero value is ready.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level (live sessions, open journals). The
// zero value is ready.
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set overwrites the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds observations with value <= 1 (negatives are clamped to 0);
// bucket i (i >= 1) holds 2^(i-1) < value <= 2^i, so for nanosecond
// latencies the range runs from 1ns to ~34s before the overflow bucket
// catches the rest.
const histBuckets = 36

// Histogram is a lock-free log2-bucketed distribution of non-negative
// int64 observations — latencies in nanoseconds, tree depths, byte
// counts. Recording is two atomic adds plus one atomic increment; there
// is no locking anywhere, so concurrent Observe calls may be seen by a
// concurrent Snapshot in partially applied form. That skew is bounded
// by one observation and is irrelevant for monitoring.
//
// The zero value is ready.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Uint64
}

// bucketOf returns the bucket index for value v per the histBuckets
// contract: 0 for v <= 1, else the smallest i with v <= 2^i, capped at
// the overflow bucket. bits.Len64(v-1) is that smallest i — the
// previous bits.Len64(v) put exact powers of two (including 1) one
// bucket too high, making every quantile bound for them twice the
// true value.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
	// Lock-free max: retry while someone else raced a smaller value in.
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// HistogramSnapshot is the exported view of a Histogram. Quantiles are
// upper-bound estimates from the log2 buckets (within 2x of the true
// value), which is plenty to spot a latency regression.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Snapshot captures the distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return s
	}
	s.Mean = float64(s.Sum) / float64(total)
	s.P50 = quantile(&counts, total, 0.50)
	s.P90 = quantile(&counts, total, 0.90)
	s.P99 = quantile(&counts, total, 0.99)
	return s
}

// HistogramState is a raw copy of a histogram's bucket counts — the
// currency of windowed (delta) analysis. Where HistogramSnapshot gives
// cumulative quantiles since process start, two States taken at the
// edges of an observation window give the distribution of just that
// window via DeltaQuantile — how the rollout canary gate judges the
// latency of the new revision without the history drowning it out.
type HistogramState struct {
	Count   uint64
	Buckets [histBuckets]uint64
}

// State captures the histogram's current bucket counts.
func (h *Histogram) State() HistogramState {
	var s HistogramState
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
		s.Count += s.Buckets[i]
	}
	return s
}

// DeltaQuantile returns the q-th quantile (upper-bound estimate, like
// HistogramSnapshot) of the observations recorded between two States of
// the same histogram, or 0 when the window saw none. Counts are clamped
// per bucket, so a torn read under concurrent traffic cannot underflow.
func DeltaQuantile(before, after HistogramState, q float64) int64 {
	var counts [histBuckets]uint64
	total := uint64(0)
	for i := range counts {
		if after.Buckets[i] > before.Buckets[i] {
			counts[i] = after.Buckets[i] - before.Buckets[i]
		}
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return quantile(&counts, total, q)
}

// quantile returns the upper bound of the bucket containing the q-th
// observation.
func quantile(counts *[histBuckets]uint64, total uint64, q float64) int64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := uint64(0)
	for i, c := range counts {
		seen += c
		if seen > rank {
			if i >= 63 {
				return int64(^uint64(0) >> 1)
			}
			return int64(1) << i // bucket i holds values <= 2^i
		}
	}
	return 0
}
