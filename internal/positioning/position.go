// Package positioning implements the PerPos Positioning Layer (paper
// §2.3): the traditional, technology-transparent API location-aware
// applications program against — location providers selected by
// criteria, push and pull position retrieval, proximity notifications,
// tracked targets and k-nearest queries — while still surfacing the
// Channel Features installed in the layers below (the translucency that
// distinguishes PerPos from closed positioning middleware).
//
// It also defines Position, the technology-independent position datum
// produced by the top of every positioning pipeline. Technology detail
// beyond these fields deliberately does not live here: it travels as
// sample attributes or feature data in the lower layers, which is the
// paper's answer to the position-format bloat of Location Stack-style
// middleware.
package positioning

import (
	"fmt"
	"time"

	"perpos/internal/geo"
)

// KindPosition is the sample kind carrying Position payloads.
const KindPosition = "position"

// KindRoom is the sample kind carrying room-ID string payloads produced
// by Resolver-style components.
const KindRoom = "position.room"

// Position is a technology-independent position estimate.
type Position struct {
	// Time is the estimate's timestamp.
	Time time.Time `json:"time"`
	// Global is the WGS84 position.
	Global geo.Point `json:"global"`
	// Local is the building-local position; valid when HasLocal is set.
	Local geo.ENU `json:"local,omitempty"`
	// HasLocal reports whether Local is meaningful.
	HasLocal bool `json:"hasLocal,omitempty"`
	// Floor is the building level of Local.
	Floor int `json:"floor,omitempty"`
	// Accuracy is the 1-sigma horizontal error estimate in metres;
	// 0 means unknown.
	Accuracy float64 `json:"accuracy,omitempty"`
	// Source names the producing technology ("gps", "wifi",
	// "particle-filter").
	Source string `json:"source,omitempty"`
	// RoomID is the symbolic room, when resolved.
	RoomID string `json:"roomId,omitempty"`
}

// String renders the position for logs.
func (p Position) String() string {
	if p.RoomID != "" {
		return fmt.Sprintf("%s [room %s] ±%.1fm (%s)", p.Global, p.RoomID, p.Accuracy, p.Source)
	}
	return fmt.Sprintf("%s ±%.1fm (%s)", p.Global, p.Accuracy, p.Source)
}

// DistanceTo returns the great-circle distance in metres to another
// position.
func (p Position) DistanceTo(q Position) float64 {
	return p.Global.DistanceTo(q.Global)
}
