package positioning

import (
	"sync"

	"perpos/internal/core"
	"perpos/internal/geo"
)

// FeatureLookup resolves a named feature for a provider — normally
// backed by the provider's delivery channel (channel.Channel.Feature),
// which is how Channel Features installed in the lower layers stay
// accessible "in the high-level interaction, where details are
// abstracted away" (§2.3).
type FeatureLookup func(name string) (any, bool)

// Provider is a JSR-179-style location provider: the application-facing
// handle for one positioning pipeline.
type Provider struct {
	name string
	info ProviderInfo

	mu      sync.Mutex
	last    Position
	hasLast bool
	subs    map[int]func(Position)
	// subList is an immutable snapshot of subs in registration order,
	// rebuilt on subscribe/cancel, so Deliver does not copy the
	// subscriber set on every position.
	subList   []func(Position)
	proxSubs  map[int]*proximityWatch
	avail     Availability
	availSubs map[int]func(Availability)
	nextID    int
	features  FeatureLookup
}

// ProviderInfo describes a provider for criteria matching.
type ProviderInfo struct {
	// Technology is the position source ("gps", "wifi",
	// "particle-filter", "fused").
	Technology string
	// TypicalAccuracy is the expected 1-sigma error in metres.
	TypicalAccuracy float64
	// RoomLevel reports whether positions carry symbolic room IDs.
	RoomLevel bool
	// Features lists the feature names reachable through the provider.
	Features []string
}

// proximityWatch is one edge-triggered proximity registration.
type proximityWatch struct {
	center geo.Point
	radius float64
	inside bool
	fn     func(Position)
}

// NewProvider returns a provider with the given descriptive info.
// Features are resolved through lookup (nil disables feature access).
func NewProvider(name string, info ProviderInfo, lookup FeatureLookup) *Provider {
	return &Provider{
		name:     name,
		info:     info,
		subs:     make(map[int]func(Position)),
		proxSubs: make(map[int]*proximityWatch),
		features: lookup,
	}
}

// Name returns the provider name.
func (p *Provider) Name() string { return p.name }

// Info returns the provider description.
func (p *Provider) Info() ProviderInfo { return p.info }

// Last implements pull semantics: the most recent position, if any.
func (p *Provider) Last() (Position, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.last, p.hasLast
}

// Subscribe implements push semantics; fn runs on the delivering
// goroutine. The returned cancel removes the subscription.
func (p *Provider) Subscribe(fn func(Position)) (cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	p.subs[id] = fn
	p.rebuildSubListLocked()
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.subs, id)
		p.rebuildSubListLocked()
	}
}

// rebuildSubListLocked snapshots subs in registration order. Called with
// p.mu held; Deliver reads the snapshot and never mutates it.
func (p *Provider) rebuildSubListLocked() {
	if len(p.subs) == 0 {
		p.subList = nil
		return
	}
	lst := make([]func(Position), 0, len(p.subs))
	for id := 0; id < p.nextID; id++ {
		if fn, ok := p.subs[id]; ok {
			lst = append(lst, fn)
		}
	}
	p.subList = lst
}

// NotifyRoomChange registers a notification firing whenever the
// delivered position's symbolic room changes (including to/from "no
// room" when moving outdoors) — the symbolic counterpart of proximity
// notifications for room-level providers.
func (p *Provider) NotifyRoomChange(fn func(roomID string, pos Position)) (cancel func()) {
	var last string
	var started bool
	return p.Subscribe(func(pos Position) {
		if started && pos.RoomID == last {
			return
		}
		started = true
		last = pos.RoomID
		fn(pos.RoomID, pos)
	})
}

// NotifyProximity registers an edge-triggered notification: fn fires
// once each time the position enters the circle around center (§2.3
// "setting up location related notifications, e.g., based on proximity
// to a point").
func (p *Provider) NotifyProximity(center geo.Point, radius float64, fn func(Position)) (cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	p.proxSubs[id] = &proximityWatch{center: center, radius: radius, fn: fn}
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.proxSubs, id)
	}
}

// Feature resolves a named feature through the provider — the
// Positioning Layer's translucency hook. The features "originally
// implemented in the PerPos middleware are visible as well as all
// available Channel Features" without descending to the PCL/PSL.
func (p *Provider) Feature(name string) (any, bool) {
	p.mu.Lock()
	lookup := p.features
	p.mu.Unlock()
	if lookup == nil {
		return nil, false
	}
	return lookup(name)
}

// Deliver publishes one position to pull state, subscribers and
// proximity watches. It is called by the provider's sink component.
func (p *Provider) Deliver(pos Position) {
	p.mu.Lock()
	p.last = pos
	p.hasLast = true
	subs := p.subList
	var fired []func(Position)
	for _, w := range p.proxSubs {
		inside := pos.Global.DistanceTo(w.center) <= w.radius
		if inside && !w.inside {
			fired = append(fired, w.fn)
		}
		w.inside = inside
	}
	p.mu.Unlock()

	for _, fn := range subs {
		fn(pos)
	}
	for _, fn := range fired {
		fn(pos)
	}
}

// NewProviderSink returns the Processing Component that terminates a
// pipeline into a Provider: the "application root" of the processing
// tree from the middleware's perspective. The Provider keeps the
// current position itself, so the sink retains only a single sample —
// unbounded recording would grow without limit in long-running
// sessions.
func NewProviderSink(id string, p *Provider) *core.Sink {
	return core.NewSink(id, []core.Kind{KindPosition},
		core.WithKeep(1),
		core.WithCallback(func(s core.Sample) {
			if pos, ok := s.Payload.(Position); ok {
				p.Deliver(pos)
			}
		}))
}
