package positioning

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"perpos/internal/core"
	"perpos/internal/geo"
)

var origin = geo.Point{Lat: 56.1629, Lon: 10.2039}

func posAt(p geo.Point, at time.Time, acc float64, source string) Position {
	return Position{Time: at, Global: p, Accuracy: acc, Source: source}
}

func TestProviderPushPull(t *testing.T) {
	p := NewProvider("gps", ProviderInfo{Technology: "gps", TypicalAccuracy: 5}, nil)
	if _, ok := p.Last(); ok {
		t.Error("fresh provider has a last position")
	}

	var pushed []Position
	cancel := p.Subscribe(func(pos Position) { pushed = append(pushed, pos) })

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	p.Deliver(posAt(origin, at, 4, "gps"))
	last, ok := p.Last()
	if !ok || last.Accuracy != 4 {
		t.Errorf("Last = %+v, %v", last, ok)
	}
	if len(pushed) != 1 {
		t.Fatalf("pushed = %d, want 1", len(pushed))
	}

	cancel()
	p.Deliver(posAt(origin, at.Add(time.Second), 4, "gps"))
	if len(pushed) != 1 {
		t.Error("subscription fired after cancel")
	}
	if last, _ = p.Last(); !last.Time.After(at) {
		t.Error("Last not updated after cancel")
	}
}

func TestProximityNotificationEdgeTriggered(t *testing.T) {
	p := NewProvider("gps", ProviderInfo{}, nil)
	center := origin
	var fires int
	cancel := p.NotifyProximity(center, 50, func(Position) { fires++ })
	defer cancel()

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	deliver := func(dist float64) {
		p.Deliver(posAt(center.Offset(dist, 90), at, 3, "gps"))
		at = at.Add(time.Second)
	}

	deliver(200) // outside
	if fires != 0 {
		t.Fatal("fired while outside")
	}
	deliver(10) // enter
	if fires != 1 {
		t.Fatalf("fires = %d after entering, want 1", fires)
	}
	deliver(20) // still inside: no re-fire
	deliver(30)
	if fires != 1 {
		t.Fatalf("fires = %d while dwelling, want 1", fires)
	}
	deliver(200) // exit
	deliver(5)   // re-enter
	if fires != 2 {
		t.Fatalf("fires = %d after re-entry, want 2", fires)
	}
}

func TestProviderFeatureLookup(t *testing.T) {
	lookup := func(name string) (any, bool) {
		if name == "likelihood" {
			return "the-feature", true
		}
		return nil, false
	}
	p := NewProvider("pf", ProviderInfo{Technology: "particle-filter"}, lookup)
	if f, ok := p.Feature("likelihood"); !ok || f != "the-feature" {
		t.Errorf("Feature = %v/%v", f, ok)
	}
	if _, ok := p.Feature("absent"); ok {
		t.Error("absent feature resolved")
	}
	bare := NewProvider("bare", ProviderInfo{}, nil)
	if _, ok := bare.Feature("anything"); ok {
		t.Error("nil lookup resolved a feature")
	}
}

func TestProviderSinkDelivers(t *testing.T) {
	p := NewProvider("gps", ProviderInfo{}, nil)
	sink := NewProviderSink("app", p)
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	pos := posAt(origin, at, 3, "gps")
	if err := sink.Process(0, core.NewSample(KindPosition, pos, at), nil); err != nil {
		t.Fatal(err)
	}
	got, ok := p.Last()
	if !ok || got.Accuracy != 3 {
		t.Errorf("Last = %+v, %v", got, ok)
	}
	// Non-position payloads are ignored, not fatal.
	if err := sink.Process(0, core.NewSample(KindPosition, 42, at), nil); err != nil {
		t.Fatal(err)
	}
}

func TestManagerCriteriaMatching(t *testing.T) {
	m := &Manager{}
	gps := NewProvider("gps", ProviderInfo{Technology: "gps", TypicalAccuracy: 5}, nil)
	wifi := NewProvider("wifi", ProviderInfo{Technology: "wifi", TypicalAccuracy: 3, RoomLevel: true}, nil)
	pf := NewProvider("pf", ProviderInfo{Technology: "particle-filter", TypicalAccuracy: 2,
		Features: []string{"likelihood"}},
		func(name string) (any, bool) { return nil, name == "likelihood" })
	for _, p := range []*Provider{gps, wifi, pf} {
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Register(gps); err == nil {
		t.Error("duplicate registration accepted")
	}

	tests := []struct {
		name string
		c    Criteria
		want string
	}{
		{"any -> best accuracy", Criteria{}, "pf"},
		{"by technology", Criteria{Technology: "gps"}, "gps"},
		{"room level", Criteria{RoomLevel: true}, "wifi"},
		{"accuracy bound", Criteria{MaxAccuracy: 4, Technology: "wifi"}, "wifi"},
		{"required feature", Criteria{RequiredFeatures: []string{"likelihood"}}, "pf"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p, err := m.Provider(tt.c)
			if err != nil {
				t.Fatal(err)
			}
			if p.Name() != tt.want {
				t.Errorf("Provider(%+v) = %s, want %s", tt.c, p.Name(), tt.want)
			}
		})
	}

	t.Run("no match", func(t *testing.T) {
		_, err := m.Provider(Criteria{Technology: "sonar"})
		if !errors.Is(err, ErrNoProvider) {
			t.Errorf("error = %v, want ErrNoProvider", err)
		}
		_, err = m.Provider(Criteria{MaxAccuracy: 1})
		if !errors.Is(err, ErrNoProvider) {
			t.Errorf("accuracy error = %v, want ErrNoProvider", err)
		}
		_, err = m.Provider(Criteria{RequiredFeatures: []string{"teleportation"}})
		if !errors.Is(err, ErrNoProvider) {
			t.Errorf("feature error = %v, want ErrNoProvider", err)
		}
	})
}

func TestTargetsAndKNearest(t *testing.T) {
	m := &Manager{}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)

	mkTarget := func(id string, dist float64) {
		p := NewProvider(id+"-gps", ProviderInfo{Technology: "gps"}, nil)
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
		tgt := m.Track(id)
		tgt.Attach(p)
		p.Deliver(posAt(origin.Offset(dist, 0), at, 3, "gps"))
	}
	mkTarget("alice", 10)
	mkTarget("bob", 100)
	mkTarget("carol", 40)

	// An untracked target with no position does not appear.
	m.Track("ghost")

	near := m.KNearest(origin, 2)
	if len(near) != 2 {
		t.Fatalf("KNearest = %d entries", len(near))
	}
	if near[0].Target.ID() != "alice" || near[1].Target.ID() != "carol" {
		t.Errorf("order = %s, %s", near[0].Target.ID(), near[1].Target.ID())
	}
	if near[0].Distance > near[1].Distance {
		t.Error("distances unsorted")
	}

	all := m.KNearest(origin, 0)
	if len(all) != 3 {
		t.Errorf("k=0 returned %d, want all 3", len(all))
	}

	// Track returns the same target for the same ID.
	if m.Track("alice") != m.Track("alice") {
		t.Error("Track not idempotent")
	}
	if got := len(m.Targets()); got != 4 {
		t.Errorf("Targets = %d, want 4", got)
	}
}

// TestKNearestMatchesFullSort: the heap selection agrees with a plain
// full sort for every k over a spread of target layouts.
func TestKNearestMatchesFullSort(t *testing.T) {
	m := &Manager{}
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	// Distances include duplicates so the ID tie-break is exercised.
	dists := []float64{40, 10, 40, 250, 3, 10, 80, 40, 0, 120}
	for i, d := range dists {
		id := fmt.Sprintf("t%02d", i)
		p := NewProvider(id+"-gps", ProviderInfo{Technology: "gps"}, nil)
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
		tgt := m.Track(id)
		tgt.Attach(p)
		p.Deliver(posAt(origin.Offset(d, float64(i*36)), at, 3, "gps"))
	}
	m.Track("no-position")

	// Reference: full sort with the same ordering rule.
	var ref []Neighbor
	for _, tgt := range m.Targets() {
		pos, ok := tgt.Last()
		if !ok {
			continue
		}
		ref = append(ref, Neighbor{Target: tgt, Position: pos, Distance: origin.DistanceTo(pos.Global)})
	}
	sort.Slice(ref, func(i, j int) bool { return neighborLess(ref[i], ref[j]) })

	for k := 0; k <= len(dists)+2; k++ {
		got := m.KNearest(origin, k)
		want := ref
		if k > 0 && k < len(ref) {
			want = ref[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d entries, want %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i].Target != want[i].Target || got[i].Distance != want[i].Distance {
				t.Errorf("k=%d entry %d: %s@%.2f, want %s@%.2f", k, i,
					got[i].Target.ID(), got[i].Distance, want[i].Target.ID(), want[i].Distance)
			}
		}
	}
}

// sessionSource is a fake runtime: ProvidersFor spins up one provider
// per target, Release reclaims it.
type sessionSource struct {
	mu       sync.Mutex
	live     map[string]*Provider
	creates  int
	releases []string
	fail     bool
}

func (s *sessionSource) ProvidersFor(id string) ([]*Provider, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail {
		return nil, errors.New("spin-up failed")
	}
	if p, ok := s.live[id]; ok {
		return []*Provider{p}, nil
	}
	if s.live == nil {
		s.live = make(map[string]*Provider)
	}
	s.creates++
	p := NewProvider(id+"-session", ProviderInfo{Technology: "fused"}, nil)
	s.live[id] = p
	return []*Provider{p}, nil
}

func (s *sessionSource) Release(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.live, id)
	s.releases = append(s.releases, id)
}

func TestTrackObtainsProvidersFromSource(t *testing.T) {
	m := &Manager{}
	src := &sessionSource{}
	m.BindSource(src)

	tgt, err := m.TrackErr("alice")
	if err != nil {
		t.Fatal(err)
	}
	provs := tgt.Providers()
	if len(provs) != 1 || provs[0].Name() != "alice-session" {
		t.Fatalf("Providers = %v", provs)
	}
	// Tracking again reuses the registration, no second spin-up.
	if again := m.Track("alice"); again != tgt {
		t.Error("Track not idempotent with a source")
	}
	if src.creates != 1 {
		t.Errorf("creates = %d, want 1", src.creates)
	}

	// The source-supplied provider feeds the target.
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	provs[0].Deliver(posAt(origin, at, 2, "fused"))
	if pos, ok := tgt.Last(); !ok || pos.Source != "fused" {
		t.Errorf("Last = %+v, %v", pos, ok)
	}

	// Untrack releases the session and forgets the target.
	m.Untrack("alice")
	if len(src.releases) != 1 || src.releases[0] != "alice" {
		t.Errorf("releases = %v", src.releases)
	}
	if got := len(m.Targets()); got != 0 {
		t.Errorf("Targets after Untrack = %d", got)
	}
	// Unknown IDs are a no-op, not a release.
	m.Untrack("nobody")
	if len(src.releases) != 1 {
		t.Errorf("releases after unknown Untrack = %v", src.releases)
	}

	// Re-tracking spins up a fresh session.
	if _, err := m.TrackErr("alice"); err != nil {
		t.Fatal(err)
	}
	if src.creates != 2 {
		t.Errorf("creates after re-track = %d, want 2", src.creates)
	}
}

func TestTrackErrSurfacesSourceFailure(t *testing.T) {
	m := &Manager{}
	src := &sessionSource{fail: true}
	m.BindSource(src)
	if _, err := m.TrackErr("alice"); err == nil {
		t.Fatal("TrackErr swallowed the source failure")
	}
	if got := len(m.Targets()); got != 0 {
		t.Errorf("failed track left %d targets", got)
	}
	// Track degrades to a bare target instead of panicking.
	tgt := m.Track("alice")
	if tgt == nil || len(tgt.Providers()) != 0 {
		t.Errorf("degraded Track = %+v", tgt)
	}
}

func TestTargetDetach(t *testing.T) {
	m := &Manager{}
	tgt := m.Track("t")
	a := NewProvider("a", ProviderInfo{}, nil)
	b := NewProvider("b", ProviderInfo{}, nil)
	tgt.Attach(a)
	tgt.Attach(b)
	tgt.Detach(a)
	if provs := tgt.Providers(); len(provs) != 1 || provs[0] != b {
		t.Errorf("Providers after Detach = %v", provs)
	}
	tgt.Detach(a) // unknown: no-op
	if len(tgt.Providers()) != 1 {
		t.Error("double Detach removed the wrong provider")
	}
}

func TestTargetFreshestAcrossProviders(t *testing.T) {
	m := &Manager{}
	old := NewProvider("old", ProviderInfo{}, nil)
	fresh := NewProvider("fresh", ProviderInfo{}, nil)
	tgt := m.Track("t")
	tgt.Attach(old)
	tgt.Attach(fresh)

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	old.Deliver(posAt(origin, at, 10, "gps"))
	fresh.Deliver(posAt(origin.Offset(5, 0), at.Add(time.Minute), 3, "wifi"))

	got, ok := tgt.Last()
	if !ok || got.Source != "wifi" {
		t.Errorf("Last = %+v, want the fresher wifi position", got)
	}

	empty := m.Track("empty")
	if _, ok := empty.Last(); ok {
		t.Error("empty target reported a position")
	}
}

func TestPositionString(t *testing.T) {
	p := Position{Global: origin, Accuracy: 3.2, Source: "gps"}
	if s := p.String(); s == "" {
		t.Error("empty String")
	}
	p.RoomID = "N1"
	if s := p.String(); s == "" {
		t.Error("empty String with room")
	}
}

func TestPositionDistanceTo(t *testing.T) {
	a := Position{Global: origin}
	b := Position{Global: origin.Offset(100, 45)}
	d := a.DistanceTo(b)
	if d < 99 || d > 101 {
		t.Errorf("DistanceTo = %v, want ~100", d)
	}
}

func TestNotifyRoomChange(t *testing.T) {
	p := NewProvider("wifi", ProviderInfo{RoomLevel: true}, nil)
	var events []string
	cancel := p.NotifyRoomChange(func(room string, _ Position) {
		events = append(events, room)
	})
	defer cancel()

	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	deliver := func(room string) {
		p.Deliver(Position{Time: at, Global: origin, RoomID: room})
		at = at.Add(time.Second)
	}
	deliver("N1")
	deliver("N1") // no change
	deliver("corridor")
	deliver("corridor")
	deliver("") // outdoors
	deliver("N1")

	want := []string{"N1", "corridor", "", "N1"}
	if len(events) != len(want) {
		t.Fatalf("events = %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %q, want %q", i, events[i], want[i])
		}
	}
}
