package positioning

import "testing"

func TestAvailabilityTransitionsAndNotification(t *testing.T) {
	p := NewProvider("gps", ProviderInfo{Technology: "gps"}, nil)
	if got := p.Availability(); got != Available {
		t.Fatalf("initial availability = %v, want Available", got)
	}
	var seen []Availability
	cancel := p.NotifyAvailability(func(a Availability) { seen = append(seen, a) })

	p.SetAvailability(Available) // no change, no notification
	p.SetAvailability(TemporarilyUnavailable)
	p.SetAvailability(TemporarilyUnavailable) // duplicate suppressed
	p.SetAvailability(Available)
	want := []Availability{TemporarilyUnavailable, Available}
	if len(seen) != len(want) {
		t.Fatalf("notifications = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notifications = %v, want %v", seen, want)
		}
	}

	cancel()
	p.SetAvailability(TemporarilyUnavailable)
	if len(seen) != len(want) {
		t.Error("notification fired after cancel")
	}
}

func TestOutOfServiceIsTerminal(t *testing.T) {
	p := NewProvider("gps", ProviderInfo{}, nil)
	p.SetAvailability(OutOfService)
	p.SetAvailability(Available)
	if got := p.Availability(); got != OutOfService {
		t.Fatalf("availability = %v, want OutOfService to be terminal", got)
	}
}

func TestCriteriaSkipOutOfService(t *testing.T) {
	m := &Manager{}
	live := NewProvider("live", ProviderInfo{Technology: "gps", TypicalAccuracy: 10}, nil)
	dead := NewProvider("dead", ProviderInfo{Technology: "gps", TypicalAccuracy: 1}, nil)
	for _, p := range []*Provider{live, dead} {
		if err := m.Register(p); err != nil {
			t.Fatal(err)
		}
	}
	dead.SetAvailability(OutOfService)
	// dead has the better accuracy but is out of service.
	got, err := m.Provider(Criteria{Technology: "gps"})
	if err != nil {
		t.Fatal(err)
	}
	if got != live {
		t.Errorf("Provider() = %q, want the in-service %q", got.Name(), live.Name())
	}
}

func TestAvailabilityStrings(t *testing.T) {
	cases := map[Availability]string{
		Available:              "AVAILABLE",
		TemporarilyUnavailable: "TEMPORARILY_UNAVAILABLE",
		OutOfService:           "OUT_OF_SERVICE",
		Availability(42):       "UNKNOWN",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", a, got, want)
		}
	}
}
