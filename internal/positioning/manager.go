package positioning

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"perpos/internal/geo"
)

// ErrNoProvider indicates that no registered provider matches the
// criteria.
var ErrNoProvider = errors.New("positioning: no provider matches criteria")

// ProviderSource supplies the providers for a tracked target on demand
// — the seam through which a session runtime spins up a per-target
// pipeline instance the moment an application starts tracking.
// Implementations must be safe for concurrent use and must not call
// back into the Manager from ProvidersFor.
type ProviderSource interface {
	// ProvidersFor returns the providers serving the given target,
	// creating backing resources as needed. Repeated calls with the same
	// ID must be idempotent (return the same live providers).
	ProvidersFor(id string) ([]*Provider, error)
}

// ReleasingSource is an optional ProviderSource extension notified when
// a target stops being tracked, so per-target backing resources
// (pipeline instances, goroutines) can be reclaimed.
type ReleasingSource interface {
	ProviderSource
	// Release frees the resources backing the target's providers. It
	// must tolerate IDs it never served.
	Release(id string)
}

// Criteria selects a location provider, in the style of the Java
// Location API (JSR-179) the paper models its top layer on.
type Criteria struct {
	// Technology restricts to one source ("" accepts any).
	Technology string
	// MaxAccuracy is the worst acceptable typical accuracy in metres
	// (0 accepts any).
	MaxAccuracy float64
	// RoomLevel requires symbolic room output.
	RoomLevel bool
	// RequiredFeatures must all be reachable through the provider —
	// applications can demand the seams they need (e.g. "likelihood").
	RequiredFeatures []string
}

// Manager is the provider registry applications request providers from.
// The zero value is ready to use.
type Manager struct {
	mu        sync.Mutex
	providers map[string]*Provider
	order     []string
	targets   map[string]*Target
	source    ProviderSource
}

// BindSource installs the provider source consulted when a new target
// is tracked. Targets tracked before the bind keep their providers.
func (m *Manager) BindSource(s ProviderSource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.source = s
}

// Register adds a provider under its name.
func (m *Manager) Register(p *Provider) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.providers == nil {
		m.providers = make(map[string]*Provider)
	}
	if _, ok := m.providers[p.Name()]; ok {
		return fmt.Errorf("positioning: provider %q already registered", p.Name())
	}
	m.providers[p.Name()] = p
	m.order = append(m.order, p.Name())
	return nil
}

// Providers returns the registered providers in registration order.
func (m *Manager) Providers() []*Provider {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Provider, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.providers[name])
	}
	return out
}

// Provider returns the best provider matching the criteria: among the
// matches, the one with the best (smallest) typical accuracy.
func (m *Manager) Provider(c Criteria) (*Provider, error) {
	var best *Provider
	for _, p := range m.Providers() {
		if !matches(p, c) {
			continue
		}
		if best == nil || p.Info().TypicalAccuracy < best.Info().TypicalAccuracy {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %+v", ErrNoProvider, c)
	}
	return best, nil
}

func matches(p *Provider, c Criteria) bool {
	if p.Availability() == OutOfService {
		// JSR-179: an out-of-service provider never satisfies criteria.
		return false
	}
	info := p.Info()
	if c.Technology != "" && info.Technology != c.Technology {
		return false
	}
	if c.MaxAccuracy > 0 && (info.TypicalAccuracy == 0 || info.TypicalAccuracy > c.MaxAccuracy) {
		return false
	}
	if c.RoomLevel && !info.RoomLevel {
		return false
	}
	for _, f := range c.RequiredFeatures {
		if _, ok := p.Feature(f); !ok {
			return false
		}
	}
	return true
}

// Target is a tracked entity with one or more attached providers (§2.3:
// "definition of tracked targets, which may have several sensors
// attached to them").
type Target struct {
	id string

	mu        sync.Mutex
	providers []*Provider
}

// ID returns the target identifier.
func (t *Target) ID() string { return t.id }

// Last returns the freshest position across the target's providers.
func (t *Target) Last() (Position, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best Position
	found := false
	for _, p := range t.providers {
		pos, ok := p.Last()
		if !ok {
			continue
		}
		if !found || pos.Time.After(best.Time) {
			best = pos
			found = true
		}
	}
	return best, found
}

// Attach adds a provider to the target.
func (t *Target) Attach(p *Provider) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.providers = append(t.providers, p)
}

// Detach removes a previously attached provider. Unknown providers are
// ignored.
func (t *Target) Detach(p *Provider) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, q := range t.providers {
		if q == p {
			t.providers = append(t.providers[:i], t.providers[i+1:]...)
			return
		}
	}
}

// Providers returns the target's attached providers.
func (t *Target) Providers() []*Provider {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Provider(nil), t.providers...)
}

// Track registers (or returns) the target with the given ID. When a
// provider source is bound and fails, Track degrades to a bare target
// with no attached providers; use TrackErr to observe the failure.
func (m *Manager) Track(id string) *Target {
	if t, err := m.TrackErr(id); err == nil {
		return t
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.targets == nil {
		m.targets = make(map[string]*Target)
	}
	if t, ok := m.targets[id]; ok {
		return t
	}
	t := &Target{id: id}
	m.targets[id] = t
	return t
}

// TrackErr registers (or returns) the target with the given ID. When a
// provider source is bound, the target's providers are obtained from it
// — for a session runtime source this spins up the target's pipeline
// instance. ProvidersFor runs outside the manager lock; if two callers
// race on the same new ID, both consult the source (which must be
// idempotent) and one registration wins.
func (m *Manager) TrackErr(id string) (*Target, error) {
	m.mu.Lock()
	if t, ok := m.targets[id]; ok {
		m.mu.Unlock()
		return t, nil
	}
	src := m.source
	m.mu.Unlock()

	var provs []*Provider
	if src != nil {
		var err error
		provs, err = src.ProvidersFor(id)
		if err != nil {
			return nil, fmt.Errorf("positioning: track %q: %w", id, err)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.targets == nil {
		m.targets = make(map[string]*Target)
	}
	if t, ok := m.targets[id]; ok {
		return t, nil
	}
	t := &Target{id: id, providers: provs}
	m.targets[id] = t
	return t, nil
}

// Untrack removes the target and, when the bound source supports
// release, frees the target's backing resources. The release runs
// outside the manager lock so a runtime source can tear down its
// session without lock-order coupling. Unknown IDs are ignored.
func (m *Manager) Untrack(id string) {
	m.mu.Lock()
	_, ok := m.targets[id]
	if ok {
		delete(m.targets, id)
	}
	src := m.source
	m.mu.Unlock()
	if !ok {
		return
	}
	if rs, isReleasing := src.(ReleasingSource); isReleasing {
		rs.Release(id)
	}
}

// Targets returns all tracked targets, sorted by ID.
func (m *Manager) Targets() []*Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Target, 0, len(m.targets))
	for _, t := range m.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Neighbor is one k-nearest result.
type Neighbor struct {
	Target   *Target
	Position Position
	Distance float64
}

// KNearest returns the k tracked targets nearest to the given point,
// by last known position (§2.3 "the k-nearest targets"). k <= 0 returns
// all positioned targets. Selection keeps a bounded max-heap of the k
// best candidates — O(n log k) instead of sorting the full target set,
// which matters once the runtime tracks thousands of sessions.
func (m *Manager) KNearest(from geo.Point, k int) []Neighbor {
	targets := m.Targets()
	if k <= 0 || k > len(targets) {
		k = len(targets)
	}
	if k == 0 {
		return nil
	}
	h := make(neighborHeap, 0, k)
	for _, t := range targets {
		pos, ok := t.Last()
		if !ok {
			continue
		}
		nb := Neighbor{
			Target:   t,
			Position: pos,
			Distance: from.DistanceTo(pos.Global),
		}
		switch {
		case len(h) < k:
			heap.Push(&h, nb)
		case neighborLess(nb, h[0]):
			h[0] = nb
			heap.Fix(&h, 0)
		}
	}
	if len(h) == 0 {
		return nil
	}
	sort.Slice(h, func(i, j int) bool { return neighborLess(h[i], h[j]) })
	return h
}

// neighborLess orders neighbors by distance, tie-broken by target ID
// for determinism.
func neighborLess(a, b Neighbor) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	return a.Target.ID() < b.Target.ID()
}

// neighborHeap is a max-heap on neighborLess: the root is the worst of
// the k best seen so far, evicted when a closer candidate arrives.
type neighborHeap []Neighbor

func (h neighborHeap) Len() int           { return len(h) }
func (h neighborHeap) Less(i, j int) bool { return neighborLess(h[j], h[i]) }
func (h neighborHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *neighborHeap) Push(x any)        { *h = append(*h, x.(Neighbor)) }
func (h *neighborHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
