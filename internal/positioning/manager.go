package positioning

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"perpos/internal/geo"
)

// ErrNoProvider indicates that no registered provider matches the
// criteria.
var ErrNoProvider = errors.New("positioning: no provider matches criteria")

// Criteria selects a location provider, in the style of the Java
// Location API (JSR-179) the paper models its top layer on.
type Criteria struct {
	// Technology restricts to one source ("" accepts any).
	Technology string
	// MaxAccuracy is the worst acceptable typical accuracy in metres
	// (0 accepts any).
	MaxAccuracy float64
	// RoomLevel requires symbolic room output.
	RoomLevel bool
	// RequiredFeatures must all be reachable through the provider —
	// applications can demand the seams they need (e.g. "likelihood").
	RequiredFeatures []string
}

// Manager is the provider registry applications request providers from.
// The zero value is ready to use.
type Manager struct {
	mu        sync.Mutex
	providers map[string]*Provider
	order     []string
	targets   map[string]*Target
}

// Register adds a provider under its name.
func (m *Manager) Register(p *Provider) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.providers == nil {
		m.providers = make(map[string]*Provider)
	}
	if _, ok := m.providers[p.Name()]; ok {
		return fmt.Errorf("positioning: provider %q already registered", p.Name())
	}
	m.providers[p.Name()] = p
	m.order = append(m.order, p.Name())
	return nil
}

// Providers returns the registered providers in registration order.
func (m *Manager) Providers() []*Provider {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Provider, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.providers[name])
	}
	return out
}

// Provider returns the best provider matching the criteria: among the
// matches, the one with the best (smallest) typical accuracy.
func (m *Manager) Provider(c Criteria) (*Provider, error) {
	var best *Provider
	for _, p := range m.Providers() {
		if !matches(p, c) {
			continue
		}
		if best == nil || p.Info().TypicalAccuracy < best.Info().TypicalAccuracy {
			best = p
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %+v", ErrNoProvider, c)
	}
	return best, nil
}

func matches(p *Provider, c Criteria) bool {
	info := p.Info()
	if c.Technology != "" && info.Technology != c.Technology {
		return false
	}
	if c.MaxAccuracy > 0 && (info.TypicalAccuracy == 0 || info.TypicalAccuracy > c.MaxAccuracy) {
		return false
	}
	if c.RoomLevel && !info.RoomLevel {
		return false
	}
	for _, f := range c.RequiredFeatures {
		if _, ok := p.Feature(f); !ok {
			return false
		}
	}
	return true
}

// Target is a tracked entity with one or more attached providers (§2.3:
// "definition of tracked targets, which may have several sensors
// attached to them").
type Target struct {
	id string

	mu        sync.Mutex
	providers []*Provider
}

// ID returns the target identifier.
func (t *Target) ID() string { return t.id }

// Last returns the freshest position across the target's providers.
func (t *Target) Last() (Position, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var best Position
	found := false
	for _, p := range t.providers {
		pos, ok := p.Last()
		if !ok {
			continue
		}
		if !found || pos.Time.After(best.Time) {
			best = pos
			found = true
		}
	}
	return best, found
}

// Attach adds a provider to the target.
func (t *Target) Attach(p *Provider) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.providers = append(t.providers, p)
}

// Track registers (or returns) the target with the given ID.
func (m *Manager) Track(id string) *Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.targets == nil {
		m.targets = make(map[string]*Target)
	}
	if t, ok := m.targets[id]; ok {
		return t
	}
	t := &Target{id: id}
	m.targets[id] = t
	return t
}

// Targets returns all tracked targets, sorted by ID.
func (m *Manager) Targets() []*Target {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Target, 0, len(m.targets))
	for _, t := range m.targets {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Neighbor is one k-nearest result.
type Neighbor struct {
	Target   *Target
	Position Position
	Distance float64
}

// KNearest returns the k tracked targets nearest to the given point,
// by last known position (§2.3 "the k-nearest targets").
func (m *Manager) KNearest(from geo.Point, k int) []Neighbor {
	var all []Neighbor
	for _, t := range m.Targets() {
		pos, ok := t.Last()
		if !ok {
			continue
		}
		all = append(all, Neighbor{
			Target:   t,
			Position: pos,
			Distance: from.DistanceTo(pos.Global),
		})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Distance != all[j].Distance {
			return all[i].Distance < all[j].Distance
		}
		return all[i].Target.ID() < all[j].Target.ID()
	})
	if k > 0 && k < len(all) {
		all = all[:k]
	}
	return all
}
