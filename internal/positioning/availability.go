package positioning

// Availability is a JSR-179 provider state. A provider is Available
// while its pipeline is healthy, TemporarilyUnavailable while the
// supervisor has it degraded or a backing source is down, and
// OutOfService once its session is released — the terminal state.
type Availability int

const (
	// Available: the provider delivers positions normally.
	Available Availability = iota
	// TemporarilyUnavailable: the backing pipeline is degraded or a
	// source is down; service is expected to resume.
	TemporarilyUnavailable
	// OutOfService: the provider's backing resources are gone and it
	// will not recover. Criteria matching skips such providers.
	OutOfService
)

// String renders the state in JSR-179 vocabulary.
func (a Availability) String() string {
	switch a {
	case Available:
		return "AVAILABLE"
	case TemporarilyUnavailable:
		return "TEMPORARILY_UNAVAILABLE"
	case OutOfService:
		return "OUT_OF_SERVICE"
	default:
		return "UNKNOWN"
	}
}

// Availability returns the provider's current state.
func (p *Provider) Availability() Availability {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.avail
}

// SetAvailability moves the provider to the given state, notifying
// listeners only on change. OutOfService is terminal: later transitions
// are ignored. Driven by supervisor events in a supervised session;
// callbacks run on the caller's goroutine, outside the provider lock.
func (p *Provider) SetAvailability(a Availability) {
	p.mu.Lock()
	if p.avail == a || p.avail == OutOfService {
		p.mu.Unlock()
		return
	}
	p.avail = a
	subs := make([]func(Availability), 0, len(p.availSubs))
	for _, fn := range p.availSubs {
		subs = append(subs, fn)
	}
	p.mu.Unlock()
	for _, fn := range subs {
		fn(a)
	}
}

// NotifyAvailability registers a listener for state changes — the
// JSR-179 providerStateChanged notification. The returned cancel
// removes the registration.
func (p *Provider) NotifyAvailability(fn func(Availability)) (cancel func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := p.nextID
	p.nextID++
	if p.availSubs == nil {
		p.availSubs = make(map[int]func(Availability))
	}
	p.availSubs[id] = fn
	return func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		delete(p.availSubs, id)
	}
}
