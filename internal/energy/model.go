// Package energy reimplements the key parts of the EnTracked system
// (§3.3, Fig. 7) on top of the PerPos processing-graph abstractions:
// a device energy model, the Power Strategy Component Feature that
// controls the GPS duty cycle, the EnTracked Channel Feature that
// monitors the Interpreter output and drives the strategy, and the
// baseline reporting policies (always-on, periodic) the evaluation
// compares against.
//
// Substitution note (DESIGN.md): EnTracked ran on Nokia N95 phones. The
// energy model uses N95-class constants (GPS ~0.35 W, cellular report
// ~2 J); the claims reproduced are relative — energy saved versus
// error bound — not absolute joules.
package energy

import (
	"fmt"
	"sync"
	"time"

	"perpos/internal/gps"
)

// Model holds the device power constants.
type Model struct {
	// GPSTrackingW is GPS power draw while tracking, in watts.
	GPSTrackingW float64
	// GPSAcquiringW is GPS power draw during acquisition, in watts.
	GPSAcquiringW float64
	// IdleW is the baseline device draw attributed to tracking, watts.
	IdleW float64
	// ReportJ is the radio energy per position report, in joules.
	ReportJ float64
}

// DefaultModel returns N95-class constants.
func DefaultModel() Model {
	return Model{
		GPSTrackingW:  0.35,
		GPSAcquiringW: 0.40,
		IdleW:         0.02,
		ReportJ:       2.0,
	}
}

// Accountant integrates the energy spent by a tracked device. Plug
// Tick into the receiver (gps.WithTick) and call Report once per
// transmitted position update. It is safe for concurrent use.
type Accountant struct {
	model Model

	mu       sync.Mutex
	gpsJ     float64
	radioJ   float64
	idleJ    float64
	onTime   time.Duration
	offTime  time.Duration
	reports  int
	duration time.Duration
}

// NewAccountant returns an accountant over the given model.
func NewAccountant(model Model) *Accountant {
	return &Accountant{model: model}
}

// Tick integrates one receiver epoch; wire it via gps.WithTick.
func (a *Accountant) Tick(mode gps.Mode, d time.Duration) {
	sec := d.Seconds()
	a.mu.Lock()
	defer a.mu.Unlock()
	a.duration += d
	a.idleJ += a.model.IdleW * sec
	switch mode {
	case gps.ModeTracking:
		a.gpsJ += a.model.GPSTrackingW * sec
		a.onTime += d
	case gps.ModeAcquiring:
		a.gpsJ += a.model.GPSAcquiringW * sec
		a.onTime += d
	default:
		a.offTime += d
	}
}

// Report accounts one radio transmission of a position update.
func (a *Accountant) Report() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.radioJ += a.model.ReportJ
	a.reports++
}

// Summary is an energy breakdown.
type Summary struct {
	GPSJ     float64
	RadioJ   float64
	IdleJ    float64
	TotalJ   float64
	OnTime   time.Duration
	OffTime  time.Duration
	Reports  int
	Duration time.Duration
}

// DutyCycle returns the fraction of time the GPS was powered.
func (s Summary) DutyCycle() float64 {
	total := s.OnTime + s.OffTime
	if total == 0 {
		return 0
	}
	return float64(s.OnTime) / float64(total)
}

// String renders the summary for experiment tables.
func (s Summary) String() string {
	return fmt.Sprintf("total %.0f J (gps %.0f, radio %.0f, idle %.0f), duty %.0f%%, %d reports",
		s.TotalJ, s.GPSJ, s.RadioJ, s.IdleJ, s.DutyCycle()*100, s.Reports)
}

// Summary returns the accumulated breakdown.
func (a *Accountant) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Summary{
		GPSJ:     a.gpsJ,
		RadioJ:   a.radioJ,
		IdleJ:    a.idleJ,
		TotalJ:   a.gpsJ + a.radioJ + a.idleJ,
		OnTime:   a.onTime,
		OffTime:  a.offTime,
		Reports:  a.reports,
		Duration: a.duration,
	}
}
