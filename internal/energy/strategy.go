package energy

import (
	"sync"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/gps"
	"perpos/internal/positioning"
)

// Feature names of the §3.3 reimplementation.
const (
	// FeaturePowerStrategy is the Component Feature controlling the
	// sensor wrapper's duty cycle (Fig. 7 "Power Strategy").
	FeaturePowerStrategy = "power.strategy"
	// FeaturePeriodic is the periodic-polling baseline strategy.
	FeaturePeriodic = "power.periodic"
	// FeatureEnTracked is the Channel Feature monitoring the Interpreter
	// output (Fig. 7 "EnTracked Settings").
	FeatureEnTracked = "entracked"
)

// PowerControllable is the device control surface a power strategy
// drives; *gps.Receiver implements it.
type PowerControllable interface {
	PowerOn()
	PowerOff()
	Mode() gps.Mode
}

// TickSource lets a strategy observe device epochs; *gps.Receiver
// implements it.
type TickSource interface {
	AddTick(gps.TickFunc)
}

// MotionSource reports whether the device is in motion — the
// accelerometer of the original EnTracked system. *gps.Receiver
// implements it (simulated; see DESIGN.md substitutions).
type MotionSource interface {
	Moving() bool
}

// StrategyControl is the functional interface the EnTracked Channel
// Feature calls on the Power Strategy feature ("provides methods for
// controlling the operation mode of the updating scheme").
type StrategyControl interface {
	// NotifyFix informs the strategy that a position with the given
	// ground speed (m/s) and accuracy (m) was delivered and reported.
	NotifyFix(speedMS, accuracy float64)
	// SetThreshold sets the maximum tolerated distance between two
	// consecutive position updates, in metres.
	SetThreshold(m float64)
	// Threshold returns the current threshold.
	Threshold() float64
}

// PowerStrategy is the EnTracked client-side updating scheme as a
// Component Feature (§3.3): attached to the sensor wrapper (the
// receiver node), it powers the GPS down after each delivered fix and
// estimates — from the last known speed and the update threshold — when
// the target could have moved far enough that a new fix is needed,
// powering the GPS back up just early enough to cover reacquisition.
type PowerStrategy struct {
	mu        sync.Mutex
	ctrl      PowerControllable
	motion    MotionSource
	threshold float64
	maxSpeed  float64 // assumed speed before any measurement
	minSpeed  float64 // floor for measured speeds
	warmup    time.Duration

	elapsed    time.Duration
	lastFixAt  time.Duration
	movingTime time.Duration // motion-sensed movement since the last fix
	estSpeed   float64
	accuracy   float64
	haveFix    bool
}

var (
	_ core.BindableFeature = (*PowerStrategy)(nil)
	_ StrategyControl      = (*PowerStrategy)(nil)
)

// PowerStrategyConfig parameterizes the updating scheme.
type PowerStrategyConfig struct {
	// Threshold is the maximum tolerated movement between updates in
	// metres (default 50).
	Threshold float64
	// MaxSpeed is the assumed target speed before measurements, m/s
	// (default 3).
	MaxSpeed float64
	// MinSpeed floors measured speeds so a momentarily stationary
	// target still wakes the device eventually. The default is 0.3: a
	// resting target is EnTracked's biggest energy win, so the re-check
	// pace is slow.
	MinSpeed float64
	// Warmup is the reacquisition time budgeted when scheduling the
	// wake-up (default 8 s, slightly above a warm start).
	Warmup time.Duration
}

func (c PowerStrategyConfig) withDefaults() PowerStrategyConfig {
	if c.Threshold <= 0 {
		c.Threshold = 50
	}
	if c.MaxSpeed <= 0 {
		c.MaxSpeed = 3
	}
	if c.MinSpeed <= 0 {
		c.MinSpeed = 0.3
	}
	if c.Warmup <= 0 {
		c.Warmup = 8 * time.Second
	}
	return c
}

// NewPowerStrategy returns the feature.
func NewPowerStrategy(cfg PowerStrategyConfig) *PowerStrategy {
	cfg = cfg.withDefaults()
	return &PowerStrategy{
		threshold: cfg.Threshold,
		maxSpeed:  cfg.MaxSpeed,
		minSpeed:  cfg.MinSpeed,
		warmup:    cfg.Warmup,
	}
}

// FeatureName implements core.Feature.
func (s *PowerStrategy) FeatureName() string { return FeaturePowerStrategy }

// Bind implements core.BindableFeature: grab the device control
// surface, the motion sensor when present, and register for epoch
// ticks.
func (s *PowerStrategy) Bind(host core.FeatureHost) {
	if ctrl, ok := host.Component().(PowerControllable); ok {
		s.ctrl = ctrl
	}
	if m, ok := host.Component().(MotionSource); ok {
		s.motion = m
	}
	if ts, ok := host.Component().(TickSource); ok {
		ts.AddTick(s.tick)
	}
}

// NotifyFix implements StrategyControl: record motion state and power
// the GPS down until the uncertainty bound approaches the threshold.
func (s *PowerStrategy) NotifyFix(speedMS, accuracy float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.haveFix = true
	s.lastFixAt = s.elapsed
	s.movingTime = 0
	s.estSpeed = speedMS
	if s.estSpeed < s.minSpeed {
		s.estSpeed = s.minSpeed
	}
	s.accuracy = accuracy
	if s.ctrl != nil {
		s.ctrl.PowerOff()
	}
}

// SetThreshold implements StrategyControl.
func (s *PowerStrategy) SetThreshold(m float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m > 0 {
		s.threshold = m
	}
}

// Threshold implements StrategyControl.
func (s *PowerStrategy) Threshold() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.threshold
}

// tick is the per-epoch device callback: wake the GPS when the motion
// model says the target could be approaching the threshold by the time
// reacquisition completes. With a motion sensor, only epochs in which
// the target actually moved grow the uncertainty bound — a resting
// target costs no wake-ups and accrues no error, which is where
// EnTracked's savings come from [3]. Without one, every epoch counts.
func (s *PowerStrategy) tick(mode gps.Mode, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.elapsed += d
	if s.motion == nil || s.motion.Moving() {
		s.movingTime += d
	}
	if s.ctrl == nil || mode != gps.ModeOff {
		return
	}
	speed := s.estSpeed
	if !s.haveFix {
		speed = s.maxSpeed
	}
	moving := s.movingTime.Seconds()
	if s.haveFix && s.motion != nil && speed < 1 {
		// The accelerometer says how long the target moved, not how
		// fast; once moving, budget at least walking pace.
		speed = 1
	}
	bound := s.accuracy + speed*(moving+s.warmup.Seconds())
	if bound >= s.threshold {
		s.ctrl.PowerOn()
	}
}

// PeriodicStrategy is the baseline reporting policy: wake the GPS every
// period, deliver one fix, power down. It implements the same
// StrategyControl surface so experiments can swap strategies.
type PeriodicStrategy struct {
	mu      sync.Mutex
	ctrl    PowerControllable
	period  time.Duration
	warmup  time.Duration
	elapsed time.Duration
	nextOn  time.Duration
}

var (
	_ core.BindableFeature = (*PeriodicStrategy)(nil)
	_ StrategyControl      = (*PeriodicStrategy)(nil)
)

// NewPeriodicStrategy returns a strategy polling one fix every period.
func NewPeriodicStrategy(period, warmup time.Duration) *PeriodicStrategy {
	if warmup <= 0 {
		warmup = 8 * time.Second
	}
	return &PeriodicStrategy{period: period, warmup: warmup}
}

// FeatureName implements core.Feature.
func (s *PeriodicStrategy) FeatureName() string { return FeaturePeriodic }

// Bind implements core.BindableFeature.
func (s *PeriodicStrategy) Bind(host core.FeatureHost) {
	if ctrl, ok := host.Component().(PowerControllable); ok {
		s.ctrl = ctrl
	}
	if ts, ok := host.Component().(TickSource); ok {
		ts.AddTick(s.tick)
	}
}

// NotifyFix implements StrategyControl: fix obtained, sleep until the
// next poll.
func (s *PeriodicStrategy) NotifyFix(float64, float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextOn = s.elapsed + s.period - s.warmup
	if s.ctrl != nil {
		s.ctrl.PowerOff()
	}
}

// SetThreshold implements StrategyControl; periods are fixed, so this
// is a no-op.
func (s *PeriodicStrategy) SetThreshold(float64) {}

// Threshold implements StrategyControl.
func (s *PeriodicStrategy) Threshold() float64 { return 0 }

func (s *PeriodicStrategy) tick(mode gps.Mode, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.elapsed += d
	if s.ctrl == nil || mode != gps.ModeOff {
		return
	}
	if s.elapsed >= s.nextOn {
		s.ctrl.PowerOn()
	}
}

// EnTrackedFeature is the server-side Channel Feature of Fig. 7: it
// monitors the output of the Interpreter component (each channel
// delivery), accounts the radio report, and calls the Power Strategy
// feature's methods. It declares its dependency on the Power Strategy
// Component Feature being present in the channel, and is wired to it
// via Connect (looked up through the channel, as the paper's dynamic
// composition would).
type EnTrackedFeature struct {
	mu         sync.Mutex
	strategy   StrategyControl
	accountant *Accountant

	reports []positioning.Position
}

var _ channel.RequiringFeature = (*EnTrackedFeature)(nil)

// NewEnTrackedFeature returns the feature; accountant may be nil.
func NewEnTrackedFeature(accountant *Accountant) *EnTrackedFeature {
	return &EnTrackedFeature{accountant: accountant}
}

// FeatureName implements channel.Feature.
func (f *EnTrackedFeature) FeatureName() string { return FeatureEnTracked }

// Requires implements channel.RequiringFeature.
func (f *EnTrackedFeature) Requires() channel.Requirements {
	return channel.Requirements{
		ComponentFeatures: []string{FeaturePowerStrategy},
		Components:        []string{"Interpreter"},
	}
}

// Connect wires the strategy control the feature drives. Look it up on
// the channel: ch.Feature(energy.FeaturePowerStrategy).
func (f *EnTrackedFeature) Connect(strategy StrategyControl) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.strategy = strategy
}

// Apply implements channel.Feature: per delivered position, report and
// drive the strategy.
func (f *EnTrackedFeature) Apply(tree *channel.DataTree) {
	pos, ok := tree.Root.Sample.Payload.(positioning.Position)
	if !ok {
		return
	}
	speed, _ := tree.Root.Sample.FloatAttr("speedMS")

	f.mu.Lock()
	f.reports = append(f.reports, pos)
	strategy := f.strategy
	acct := f.accountant
	f.mu.Unlock()

	if acct != nil {
		acct.Report()
	}
	if strategy != nil {
		strategy.NotifyFix(speed, pos.Accuracy)
	}
}

// Reports returns the positions delivered to the server so far.
func (f *EnTrackedFeature) Reports() []positioning.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]positioning.Position, len(f.reports))
	copy(out, f.reports)
	return out
}

// ReporterFeature is the baseline counterpart of EnTrackedFeature: it
// reports every channel delivery (always-on policy) and optionally
// notifies a strategy (periodic polling), without EnTracked's declared
// requirements.
type ReporterFeature struct {
	mu         sync.Mutex
	strategy   StrategyControl
	accountant *Accountant
	reports    []positioning.Position
}

var _ channel.Feature = (*ReporterFeature)(nil)

// NewReporterFeature returns the feature; strategy and accountant may
// each be nil.
func NewReporterFeature(accountant *Accountant, strategy StrategyControl) *ReporterFeature {
	return &ReporterFeature{accountant: accountant, strategy: strategy}
}

// FeatureName implements channel.Feature.
func (f *ReporterFeature) FeatureName() string { return "reporter" }

// Apply implements channel.Feature.
func (f *ReporterFeature) Apply(tree *channel.DataTree) {
	pos, ok := tree.Root.Sample.Payload.(positioning.Position)
	if !ok {
		return
	}
	speed, _ := tree.Root.Sample.FloatAttr("speedMS")

	f.mu.Lock()
	f.reports = append(f.reports, pos)
	strategy := f.strategy
	acct := f.accountant
	f.mu.Unlock()

	if acct != nil {
		acct.Report()
	}
	if strategy != nil {
		strategy.NotifyFix(speed, pos.Accuracy)
	}
}

// Reports returns the positions delivered so far.
func (f *ReporterFeature) Reports() []positioning.Position {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]positioning.Position, len(f.reports))
	copy(out, f.reports)
	return out
}
