package energy

import (
	"testing"
	"time"

	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/positioning"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

func TestAccountantIntegratesEnergy(t *testing.T) {
	a := NewAccountant(Model{GPSTrackingW: 0.5, GPSAcquiringW: 1.0, IdleW: 0.1, ReportJ: 2})
	a.Tick(gps.ModeTracking, 10*time.Second) // 5 J gps + 1 J idle
	a.Tick(gps.ModeAcquiring, 4*time.Second) // 4 J gps + 0.4 J idle
	a.Tick(gps.ModeOff, 100*time.Second)     // 10 J idle
	a.Report()
	a.Report()

	s := a.Summary()
	if s.GPSJ != 9 {
		t.Errorf("GPSJ = %v, want 9", s.GPSJ)
	}
	if s.RadioJ != 4 {
		t.Errorf("RadioJ = %v, want 4", s.RadioJ)
	}
	if s.IdleJ != 11.4 {
		t.Errorf("IdleJ = %v, want 11.4", s.IdleJ)
	}
	if s.TotalJ != 24.4 {
		t.Errorf("TotalJ = %v, want 24.4", s.TotalJ)
	}
	if s.Reports != 2 {
		t.Errorf("Reports = %d, want 2", s.Reports)
	}
	if got := s.DutyCycle(); got < 0.12 || got > 0.13 {
		t.Errorf("DutyCycle = %v, want ~0.123", got)
	}
	if s.String() == "" {
		t.Error("empty summary string")
	}
}

func TestDutyCycleZeroTime(t *testing.T) {
	var s Summary
	if s.DutyCycle() != 0 {
		t.Error("zero-time duty cycle should be 0")
	}
}

// fakeCtrl is a scripted PowerControllable.
type fakeCtrl struct {
	mode gps.Mode
	ons  int
	offs int
}

func (f *fakeCtrl) PowerOn()       { f.mode = gps.ModeTracking; f.ons++ }
func (f *fakeCtrl) PowerOff()      { f.mode = gps.ModeOff; f.offs++ }
func (f *fakeCtrl) Mode() gps.Mode { return f.mode }

func TestPowerStrategyWakesOnUncertaintyBound(t *testing.T) {
	s := NewPowerStrategy(PowerStrategyConfig{Threshold: 50, Warmup: 5 * time.Second})
	ctrl := &fakeCtrl{mode: gps.ModeTracking}
	s.ctrl = ctrl

	// A fix at speed 2 m/s, accuracy 5 m: the strategy powers off.
	s.NotifyFix(2, 5)
	if ctrl.offs != 1 || ctrl.mode != gps.ModeOff {
		t.Fatalf("PowerOff not called: %+v", ctrl)
	}

	// Bound = 5 + 2*(t+5); reaches 50 at t = 17.5 s. Tick up to 17 s:
	// still asleep.
	for i := 0; i < 17; i++ {
		s.tick(gps.ModeOff, time.Second)
	}
	if ctrl.ons != 0 {
		t.Fatalf("woke too early after 17 s: %+v", ctrl)
	}
	s.tick(gps.ModeOff, time.Second)
	if ctrl.ons == 0 {
		t.Fatalf("did not wake at bound: %+v", ctrl)
	}
}

func TestPowerStrategySpeedFloor(t *testing.T) {
	s := NewPowerStrategy(PowerStrategyConfig{Threshold: 20, MinSpeed: 0.5, Warmup: time.Second})
	ctrl := &fakeCtrl{mode: gps.ModeTracking}
	s.ctrl = ctrl
	s.NotifyFix(0, 0) // stationary target: floored to 0.5 m/s
	// Bound = 0.5*(t+1) reaches 20 at t=39.
	for i := 0; i < 38; i++ {
		s.tick(gps.ModeOff, time.Second)
	}
	if ctrl.ons != 0 {
		t.Fatal("woke too early for stationary target")
	}
	for i := 0; i < 3; i++ {
		s.tick(gps.ModeOff, time.Second)
	}
	if ctrl.ons == 0 {
		t.Fatal("stationary target must still wake eventually")
	}
}

func TestPowerStrategyThresholdControl(t *testing.T) {
	s := NewPowerStrategy(PowerStrategyConfig{})
	if s.Threshold() != 50 {
		t.Errorf("default threshold = %v", s.Threshold())
	}
	s.SetThreshold(100)
	if s.Threshold() != 100 {
		t.Errorf("threshold = %v after SetThreshold", s.Threshold())
	}
	s.SetThreshold(-5)
	if s.Threshold() != 100 {
		t.Error("negative threshold applied")
	}
}

func TestPowerStrategyIgnoresTicksWhileOn(t *testing.T) {
	s := NewPowerStrategy(PowerStrategyConfig{Threshold: 1})
	ctrl := &fakeCtrl{mode: gps.ModeTracking}
	s.ctrl = ctrl
	for i := 0; i < 100; i++ {
		s.tick(gps.ModeTracking, time.Second)
	}
	if ctrl.ons != 0 {
		t.Error("PowerOn called while already tracking")
	}
}

func TestPeriodicStrategy(t *testing.T) {
	s := NewPeriodicStrategy(60*time.Second, 10*time.Second)
	ctrl := &fakeCtrl{mode: gps.ModeTracking}
	s.ctrl = ctrl
	s.NotifyFix(1, 5)
	if ctrl.offs != 1 {
		t.Fatal("PowerOff not called on fix")
	}
	// Next on at elapsed + 60 - 10 = 50 s.
	for i := 0; i < 49; i++ {
		s.tick(gps.ModeOff, time.Second)
	}
	if ctrl.ons != 0 {
		t.Fatal("woke too early")
	}
	s.tick(gps.ModeOff, time.Second)
	if ctrl.ons == 0 {
		t.Fatal("did not wake at period")
	}
}

func TestEnTrackedFeatureAppliesToStrategyAndAccountant(t *testing.T) {
	acct := NewAccountant(DefaultModel())
	f := NewEnTrackedFeature(acct)
	s := NewPowerStrategy(PowerStrategyConfig{})
	ctrl := &fakeCtrl{mode: gps.ModeTracking}
	s.ctrl = ctrl
	f.Connect(s)

	pos := positioning.Position{Accuracy: 4, Source: "gps"}
	sample := core.NewSample(positioning.KindPosition, pos, time.Time{})
	sample = sample.WithAttr("speedMS", 1.5)
	tree := &channel.DataTree{Root: &channel.TreeNode{Sample: sample}}
	f.Apply(tree)

	if acct.Summary().Reports != 1 {
		t.Error("report not accounted")
	}
	if ctrl.offs != 1 {
		t.Error("strategy not notified")
	}
	if len(f.Reports()) != 1 {
		t.Error("report not recorded")
	}

	// Non-position trees are ignored.
	f.Apply(&channel.DataTree{Root: &channel.TreeNode{Sample: core.NewSample("x", 1, time.Time{})}})
	if len(f.Reports()) != 1 {
		t.Error("bogus tree recorded")
	}
}

// buildPipeline wires receiver -> parser -> interpreter -> sink and
// returns the graph, layer, channel into the sink and the receiver.
func buildPipeline(t *testing.T, tr *trace.Trace, acct *Accountant, opts ...gps.ReceiverOption) (*core.Graph, *channel.Layer, *channel.Channel, *gps.Receiver) {
	t.Helper()
	opts = append(opts, gps.WithTick(acct.Tick))
	recv := gps.NewReceiver("gps", tr, gps.Config{Seed: 20, ColdStart: 15 * time.Second, WarmStart: 5 * time.Second}, opts...)
	g := core.New()
	for _, c := range []core.Component{recv, gps.NewParser("parser"), gps.NewInterpreter("interpreter", 0)} {
		if _, err := g.Add(c); err != nil {
			t.Fatal(err)
		}
	}
	sink := core.NewSink("server", []core.Kind{positioning.KindPosition})
	if _, err := g.Add(sink); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct{ from, to string }{
		{"gps", "parser"}, {"parser", "interpreter"}, {"interpreter", "server"},
	} {
		if err := g.Connect(c.from, c.to, 0); err != nil {
			t.Fatal(err)
		}
	}
	layer := channel.NewLayer(g)
	t.Cleanup(layer.Close)
	ch, ok := layer.ChannelInto("server", 0)
	if !ok {
		t.Fatal("no channel into server")
	}
	return g, layer, ch, recv
}

// trackingError returns the mean distance between the ground truth and
// the most recent report, sampled every second — the server's view of
// the target.
func trackingError(tr *trace.Trace, reports []positioning.Position) float64 {
	if len(reports) == 0 || tr.Len() == 0 {
		return -1
	}
	proj := geo.NewProjection(tr.Origin)
	var sum float64
	var n int
	ri := -1
	for ts := tr.Points[0].Time; !ts.After(tr.Points[tr.Len()-1].Time); ts = ts.Add(time.Second) {
		for ri+1 < len(reports) && !reports[ri+1].Time.After(ts) {
			ri++
		}
		if ri < 0 {
			continue // no report yet
		}
		truth, _ := tr.At(ts)
		sum += proj.ToLocal(reports[ri].Global).Distance(truth.Local)
		n++
	}
	if n == 0 {
		return -1
	}
	return sum / float64(n)
}

// TestFig7EnTrackedSavesEnergy is the §3.3 integration: EnTracked must
// use far less energy than always-on reporting while keeping the
// tracking error bounded near its threshold, and it must beat periodic
// polling on the energy/accuracy trade-off shape reported in the
// EnTracked paper.
func TestFig7EnTrackedSavesEnergy(t *testing.T) {
	mkTrace := func() *trace.Trace {
		return trace.PauseAndGo(testOrigin, 30, 4, 400, 1.4, 3*time.Minute, time.Second)
	}

	run := func(t *testing.T, strategyKind string) (Summary, float64) {
		t.Helper()
		tr := mkTrace()
		acct := NewAccountant(DefaultModel())

		var opts []gps.ReceiverOption
		if strategyKind != "always-on" {
			opts = append(opts, gps.StartOff())
		}
		g, _, ch, recv := buildPipeline(t, tr, acct, opts...)

		var reports func() []positioning.Position
		switch strategyKind {
		case "always-on":
			rep := NewReporterFeature(acct, nil)
			if err := ch.AttachFeature(rep); err != nil {
				t.Fatal(err)
			}
			reports = rep.Reports
		case "periodic-60":
			recvNode, _ := g.Node("gps")
			strat := NewPeriodicStrategy(60*time.Second, 6*time.Second)
			if err := recvNode.AttachFeature(strat); err != nil {
				t.Fatal(err)
			}
			rep := NewReporterFeature(acct, strat)
			if err := ch.AttachFeature(rep); err != nil {
				t.Fatal(err)
			}
			// Periodic needs an initial wake.
			recv.PowerOn()
			reports = rep.Reports
		case "entracked":
			recvNode, _ := g.Node("gps")
			strat := NewPowerStrategy(PowerStrategyConfig{Threshold: 50, Warmup: 6 * time.Second})
			if err := recvNode.AttachFeature(strat); err != nil {
				t.Fatal(err)
			}
			ent := NewEnTrackedFeature(acct)
			if err := ch.AttachFeature(ent); err != nil {
				t.Fatal(err)
			}
			got, ok := ch.Feature(FeaturePowerStrategy)
			if !ok {
				t.Fatal("power strategy not visible through channel")
			}
			ent.Connect(got.(StrategyControl))
			reports = ent.Reports
		}

		if _, err := g.Run(0); err != nil {
			t.Fatal(err)
		}
		errM := trackingError(tr, reports())
		return acct.Summary(), errM
	}

	always, errAlways := run(t, "always-on")
	periodic, errPeriodic := run(t, "periodic-60")
	entracked, errEnTracked := run(t, "entracked")

	t.Logf("always-on:  %v, mean error %.1f m", always, errAlways)
	t.Logf("periodic60: %v, mean error %.1f m", periodic, errPeriodic)
	t.Logf("entracked:  %v, mean error %.1f m", entracked, errEnTracked)

	if errAlways < 0 || errPeriodic < 0 || errEnTracked < 0 {
		t.Fatal("a policy produced no reports")
	}
	// Shape assertions from the EnTracked paper [3]:
	// 1. EnTracked uses a small fraction of always-on energy.
	if entracked.TotalJ > 0.5*always.TotalJ {
		t.Errorf("entracked %.0f J should be well under half of always-on %.0f J",
			entracked.TotalJ, always.TotalJ)
	}
	// 2. Its error stays bounded near the threshold.
	if errEnTracked > 60 {
		t.Errorf("entracked mean error %.1f m exceeds bound (threshold 50 m)", errEnTracked)
	}
	// 3. Always-on is the accuracy ceiling.
	if errAlways > errEnTracked {
		t.Errorf("always-on error %.1f m should not exceed entracked %.1f m",
			errAlways, errEnTracked)
	}
	// 4. EnTracked dominates periodic polling: no worse error at no
	// more energy, or clearly better error.
	if entracked.TotalJ > periodic.TotalJ && errEnTracked > errPeriodic {
		t.Errorf("entracked (%.0f J, %.1f m) dominated by periodic (%.0f J, %.1f m)",
			entracked.TotalJ, errEnTracked, periodic.TotalJ, errPeriodic)
	}
	// 5. EnTracked duty-cycles the GPS.
	if entracked.DutyCycle() > 0.8 {
		t.Errorf("entracked duty cycle %.2f, want < 0.8", entracked.DutyCycle())
	}
}
