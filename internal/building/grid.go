package building

import (
	"math"

	"perpos/internal/geo"
)

// gridCell is the spatial-index cell size in metres. At office scale
// (rooms a few metres across) a 2 m cell keeps the per-cell candidate
// list at one or two rooms while the whole index stays a few hundred
// bytes.
const gridCell = 2.0

// roomGrid is a uniform-grid spatial index over a floor's rooms: each
// cell lists the indices of the rooms overlapping it. Point→room
// lookup is one cell fetch plus a rectangle test per candidate,
// independent of the floor's total room count — the property that
// keeps RoomAt sub-microsecond on the per-sample hot path.
type roomGrid struct {
	rooms      []Room
	min        geo.ENU
	invW, invH float64
	cols, rows int
	cells      [][]int32
}

func newRoomGrid(f *Floor) *roomGrid {
	g := &roomGrid{rooms: f.Rooms, min: f.min, invW: 1 / gridCell, invH: 1 / gridCell}
	width := f.max.East - f.min.East
	depth := f.max.North - f.min.North
	if len(f.Rooms) == 0 || width <= 0 || depth <= 0 {
		return g
	}
	g.cols = int(math.Ceil(width / gridCell))
	g.rows = int(math.Ceil(depth / gridCell))
	g.cells = make([][]int32, g.cols*g.rows)
	for ri, r := range f.Rooms {
		cx0 := g.clampCol(int((r.Min.East - f.min.East) / gridCell))
		cy0 := g.clampRow(int((r.Min.North - f.min.North) / gridCell))
		// Max edges are exclusive (half-open rooms), so a room whose
		// Max lands exactly on a cell boundary does not spill into the
		// next cell.
		cx1 := g.clampCol(lastCell(r.Max.East-f.min.East, gridCell))
		cy1 := g.clampRow(lastCell(r.Max.North-f.min.North, gridCell))
		for cy := cy0; cy <= cy1; cy++ {
			for cx := cx0; cx <= cx1; cx++ {
				i := cy*g.cols + cx
				g.cells[i] = append(g.cells[i], int32(ri))
			}
		}
	}
	return g
}

// lastCell returns the index of the last cell a half-open extent
// ending at offset touches.
func lastCell(offset, cell float64) int {
	i := int(math.Ceil(offset/cell)) - 1
	if i < 0 {
		i = 0
	}
	return i
}

func (g *roomGrid) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *roomGrid) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

// lookup returns the index of the room containing p, or false.
func (g *roomGrid) lookup(p geo.ENU) (int, bool) {
	fe := (p.East - g.min.East) * g.invW
	fn := (p.North - g.min.North) * g.invH
	if fe < 0 || fn < 0 {
		return 0, false
	}
	cx, cy := int(fe), int(fn)
	if cx >= g.cols || cy >= g.rows {
		return 0, false
	}
	for _, ri := range g.cells[cy*g.cols+cx] {
		if g.rooms[ri].Contains(p) {
			return int(ri), true
		}
	}
	return 0, false
}
