// Package building models the symbolic and geometric space the indoor
// subsystems run against: buildings with floors, rectangular rooms,
// walls and doors, anchored to the globe by a local ENU projection.
//
// It is the location-model substrate of §3.2 (the particle filter's
// wall constraint), the Resolver component of Fig. 1 (position → room
// ID), the WiFi propagation model (walls attenuate signals) and the
// trace generators (ground truth annotated with occupied rooms).
//
// Point→room resolution (RoomAt) sits on the hot path of trace
// emulation and the room-number pipeline — it runs once per emitted
// position sample — so every floor carries a uniform-grid spatial
// index over its rooms instead of scanning the room list.
package building

import (
	"fmt"
	"math"

	"perpos/internal/geo"
)

// Wall is one solid segment of a floor plan, in floor-local ENU
// metres. Door openings are represented as gaps between walls, not as
// wall attributes.
type Wall struct {
	A, B geo.ENU
}

// Room is an axis-aligned rectangular room on one floor.
//
// Containment is half-open: a point on a room's Min edge belongs to
// that room, a point on its Max edge belongs to the neighbour beyond
// it (if any). This keeps RoomAt deterministic for points lying
// exactly on a shared wall — every interior boundary point resolves to
// exactly one room.
type Room struct {
	// ID is the symbolic room identifier (e.g. "corridor", "N3"; on
	// upper floors of multi-storey buildings IDs are prefixed with the
	// level, e.g. "1-N3").
	ID string
	// Min and Max are the rectangle's corners: Min is the south-west
	// corner, Max the north-east one.
	Min, Max geo.ENU
	// Door is the midpoint of the room's door opening, on the room
	// boundary.
	Door geo.ENU
}

// Center returns the room's geometric centre.
func (r Room) Center() geo.ENU {
	return geo.ENU{
		East:  (r.Min.East + r.Max.East) / 2,
		North: (r.Min.North + r.Max.North) / 2,
	}
}

// Width returns the east-west extent in metres.
func (r Room) Width() float64 { return r.Max.East - r.Min.East }

// Depth returns the north-south extent in metres.
func (r Room) Depth() float64 { return r.Max.North - r.Min.North }

// Contains reports whether p lies in the room's half-open extent
// [Min, Max).
func (r Room) Contains(p geo.ENU) bool {
	return p.East >= r.Min.East && p.East < r.Max.East &&
		p.North >= r.Min.North && p.North < r.Max.North
}

// Floor is one storey of a building: its rooms, its walls and a
// spatial index over the rooms.
type Floor struct {
	// Level is the storey number (0 = ground).
	Level int
	// Rooms are the floor's rooms.
	Rooms []Room
	// Walls are the solid segments of the floor plan (door openings
	// are gaps).
	Walls []Wall

	min, max geo.ENU
	segs     []wallSeg
	index    *roomGrid
}

// NewFloor returns a floor with its bounds and spatial index computed
// from the given rooms and walls.
func NewFloor(level int, rooms []Room, walls []Wall) *Floor {
	f := &Floor{Level: level, Rooms: rooms, Walls: walls}
	if len(rooms) > 0 {
		f.min = rooms[0].Min
		f.max = rooms[0].Max
		for _, r := range rooms[1:] {
			f.min.East = math.Min(f.min.East, r.Min.East)
			f.min.North = math.Min(f.min.North, r.Min.North)
			f.max.East = math.Max(f.max.East, r.Max.East)
			f.max.North = math.Max(f.max.North, r.Max.North)
		}
	}
	f.segs = make([]wallSeg, len(walls))
	for i, w := range walls {
		f.segs[i] = newWallSeg(w)
	}
	f.index = newRoomGrid(f)
	return f
}

// RoomAt returns the room containing p, using the floor's grid index.
func (f *Floor) RoomAt(p geo.ENU) (Room, bool) {
	i, ok := f.index.lookup(p)
	if !ok {
		return Room{}, false
	}
	return f.Rooms[i], true
}

// roomAtLinear is the naive scan RoomAt replaces; it exists as the
// baseline for BenchmarkRoomAt.
func (f *Floor) roomAtLinear(p geo.ENU) (Room, bool) {
	for _, r := range f.Rooms {
		if r.Contains(p) {
			return r, true
		}
	}
	return Room{}, false
}

// Building is a deployment site: one or more floors sharing a local
// coordinate frame anchored at a WGS84 origin.
type Building struct {
	name   string
	origin geo.Point
	proj   *geo.Projection
	floors []*Floor
	byID   map[string]roomRef
}

type roomRef struct {
	floor int // index into floors
	room  int // index into Rooms
}

// New returns a building with the given floors. The origin anchors the
// local ENU frame: local (0, 0) is the building's south-west corner.
func New(name string, origin geo.Point, floors ...*Floor) *Building {
	b := &Building{
		name:   name,
		origin: origin,
		proj:   geo.NewProjection(origin),
		floors: floors,
		byID:   make(map[string]roomRef),
	}
	for fi, f := range floors {
		for ri, r := range f.Rooms {
			b.byID[r.ID] = roomRef{floor: fi, room: ri}
		}
	}
	return b
}

// Name returns the building's name.
func (b *Building) Name() string { return b.name }

// String renders a one-line summary.
func (b *Building) String() string {
	rooms := 0
	for _, f := range b.floors {
		rooms += len(f.Rooms)
	}
	var w, d float64
	if len(b.floors) > 0 {
		w = b.floors[0].max.East - b.floors[0].min.East
		d = b.floors[0].max.North - b.floors[0].min.North
	}
	return fmt.Sprintf("%s: %d floor(s), %d rooms, %.0fx%.0f m", b.name, len(b.floors), rooms, w, d)
}

// Origin returns the WGS84 anchor of the local frame.
func (b *Building) Origin() geo.Point { return b.origin }

// Projection returns the local ENU ↔ WGS84 projection anchored at the
// building origin.
func (b *Building) Projection() *geo.Projection { return b.proj }

// Floors returns the number of storeys.
func (b *Building) Floors() int { return len(b.floors) }

// Floor returns the storey at the given level, or false for unknown
// levels.
func (b *Building) Floor(level int) (*Floor, bool) {
	if level < 0 || level >= len(b.floors) {
		return nil, false
	}
	return b.floors[level], true
}

// Bounds returns the floor's extent in local metres, or false for
// unknown levels.
func (b *Building) Bounds(level int) (min, max geo.ENU, ok bool) {
	f, ok := b.Floor(level)
	if !ok {
		return geo.ENU{}, geo.ENU{}, false
	}
	return f.min, f.max, true
}

// Rooms returns all rooms of all floors.
func (b *Building) Rooms() []Room {
	var out []Room
	for _, f := range b.floors {
		out = append(out, f.Rooms...)
	}
	return out
}

// RoomByID returns the room with the given ID and its floor level, or
// false when no floor has it.
func (b *Building) RoomByID(id string) (Room, int, bool) {
	ref, ok := b.byID[id]
	if !ok {
		return Room{}, 0, false
	}
	return b.floors[ref.floor].Rooms[ref.room], b.floors[ref.floor].Level, true
}

// RoomAt returns the room containing the local point p on the given
// floor. It is grid-indexed: one cell lookup plus at most a couple of
// rectangle tests, independent of the floor's room count.
func (b *Building) RoomAt(p geo.ENU, floor int) (Room, bool) {
	f, ok := b.Floor(floor)
	if !ok {
		return Room{}, false
	}
	return f.RoomAt(p)
}

// Locate resolves a global WGS84 position to the room containing it on
// the given floor — the symbolic half of the Resolver component.
func (b *Building) Locate(g geo.Point, floor int) (Room, bool) {
	return b.RoomAt(b.proj.ToLocal(g), floor)
}

// Crosses reports whether the segment p→q intersects any wall of the
// given floor. Door openings are wall gaps, so legal movement through
// a door does not cross.
func (b *Building) Crosses(p, q geo.ENU, floor int) bool {
	f, ok := b.Floor(floor)
	if !ok {
		return false
	}
	minE, maxE := math.Min(p.East, q.East), math.Max(p.East, q.East)
	minN, maxN := math.Min(p.North, q.North), math.Max(p.North, q.North)
	for i := range f.segs {
		s := &f.segs[i]
		if s.maxE < minE || s.minE > maxE || s.maxN < minN || s.minN > maxN {
			continue
		}
		if segmentsIntersect(p, q, s.a, s.b) {
			return true
		}
	}
	return false
}

// WallsBetween counts the walls the segment p→q passes through on the
// given floor — the attenuation input of the WiFi propagation model.
func (b *Building) WallsBetween(p, q geo.ENU, floor int) int {
	f, ok := b.Floor(floor)
	if !ok {
		return 0
	}
	minE, maxE := math.Min(p.East, q.East), math.Max(p.East, q.East)
	minN, maxN := math.Min(p.North, q.North), math.Max(p.North, q.North)
	n := 0
	for i := range f.segs {
		s := &f.segs[i]
		if s.maxE < minE || s.minE > maxE || s.maxN < minN || s.minN > maxN {
			continue
		}
		if segmentsIntersect(p, q, s.a, s.b) {
			n++
		}
	}
	return n
}

// wallSeg is a wall with its precomputed bounding box, kept in a flat
// slice for cache-friendly crossing tests.
type wallSeg struct {
	a, b                   geo.ENU
	minE, maxE, minN, maxN float64
}

func newWallSeg(w Wall) wallSeg {
	return wallSeg{
		a:    w.A,
		b:    w.B,
		minE: math.Min(w.A.East, w.B.East),
		maxE: math.Max(w.A.East, w.B.East),
		minN: math.Min(w.A.North, w.B.North),
		maxN: math.Max(w.A.North, w.B.North),
	}
}

// cross2 returns the z component of (b-a) × (c-a): positive when c is
// left of a→b, zero when collinear.
func cross2(a, b, c geo.ENU) float64 {
	return (b.East-a.East)*(c.North-a.North) - (b.North-a.North)*(c.East-a.East)
}

// onSegment reports whether collinear point c lies within segment ab's
// bounding box.
func onSegment(a, b, c geo.ENU) bool {
	return c.East >= math.Min(a.East, b.East) && c.East <= math.Max(a.East, b.East) &&
		c.North >= math.Min(a.North, b.North) && c.North <= math.Max(a.North, b.North)
}

// segmentsIntersect reports whether segments p1p2 and q1q2 intersect,
// including endpoint touches and collinear overlap (grazing a wall
// counts as hitting it).
func segmentsIntersect(p1, p2, q1, q2 geo.ENU) bool {
	d1 := cross2(q1, q2, p1)
	d2 := cross2(q1, q2, p2)
	d3 := cross2(p1, p2, q1)
	d4 := cross2(p1, p2, q2)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(q1, q2, p1):
		return true
	case d2 == 0 && onSegment(q1, q2, p2):
		return true
	case d3 == 0 && onSegment(p1, p2, q1):
		return true
	case d4 == 0 && onSegment(p1, p2, q2):
		return true
	}
	return false
}
