package building

import (
	"math"
	"testing"

	"perpos/internal/geo"
)

func TestEvaluationShape(t *testing.T) {
	b := Evaluation()
	if b.Floors() != 1 {
		t.Fatalf("floors = %d, want 1", b.Floors())
	}
	f, ok := b.Floor(0)
	if !ok || len(f.Rooms) != 11 {
		t.Fatalf("ground floor rooms = %d, want 11 (corridor + 10 offices)", len(f.Rooms))
	}
	min, max, ok := b.Bounds(0)
	if !ok {
		t.Fatal("no bounds for floor 0")
	}
	if min != (geo.ENU{}) || max.East != 40 || max.North != 12 {
		t.Errorf("bounds = %v..%v, want (0,0)..(40,12)", min, max)
	}
	corridor, level, ok := b.RoomByID("corridor")
	if !ok || level != 0 {
		t.Fatalf("corridor lookup: ok=%v level=%d", ok, level)
	}
	if c := corridor.Center(); c.East != 20 || c.North != 6 {
		t.Errorf("corridor centre = %v, want (20, 6)", c)
	}
	if corridor.Width() != 40 || corridor.Depth() != 2 {
		t.Errorf("corridor extent = %.1fx%.1f, want 40x2", corridor.Width(), corridor.Depth())
	}
	if b.Name() == "" || b.String() == "" {
		t.Error("empty Name or String")
	}
}

func TestRoomAtInterior(t *testing.T) {
	b := Evaluation()
	cases := []struct {
		p    geo.ENU
		want string
	}{
		{geo.ENU{East: 20, North: 6}, "corridor"},
		{geo.ENU{East: 4, North: 9}, "N1"},
		{geo.ENU{East: 20, North: 10}, "N3"},
		{geo.ENU{East: 36, North: 11}, "N5"},
		{geo.ENU{East: 12, North: 2}, "S2"},
		{geo.ENU{East: 28, North: 2}, "S4"},
	}
	for _, c := range cases {
		room, ok := b.RoomAt(c.p, 0)
		if !ok || room.ID != c.want {
			t.Errorf("RoomAt(%v) = %q ok=%v, want %q", c.p, room.ID, ok, c.want)
		}
	}
}

// Containment is half-open: a boundary point belongs to the room whose
// Min edge it lies on, so shared walls resolve deterministically.
func TestRoomAtBoundaries(t *testing.T) {
	b := Evaluation()
	cases := []struct {
		name string
		p    geo.ENU
		want string // "" = no room
	}{
		{"on corridor south edge", geo.ENU{East: 20, North: 5}, "corridor"},
		{"on corridor north edge", geo.ENU{East: 20, North: 7}, "N3"},
		{"on N1/N2 divider", geo.ENU{East: 8, North: 9}, "N2"},
		{"on S4/S5 divider", geo.ENU{East: 32, North: 2}, "S5"},
		{"south-west corner", geo.ENU{}, "S1"},
		{"on east perimeter", geo.ENU{East: 40, North: 6}, ""},
		{"on north perimeter", geo.ENU{East: 20, North: 12}, ""},
		{"just outside west", geo.ENU{East: -0.001, North: 6}, ""},
		{"far outside", geo.ENU{East: -500, North: 6}, ""},
	}
	for _, c := range cases {
		room, ok := b.RoomAt(c.p, 0)
		if c.want == "" {
			if ok {
				t.Errorf("%s: RoomAt(%v) = %q, want no room", c.name, c.p, room.ID)
			}
			continue
		}
		if !ok || room.ID != c.want {
			t.Errorf("%s: RoomAt(%v) = %q ok=%v, want %q", c.name, c.p, room.ID, ok, c.want)
		}
	}
}

func TestRoomAtWrongFloor(t *testing.T) {
	b := Evaluation()
	if _, ok := b.RoomAt(geo.ENU{East: 20, North: 6}, 1); ok {
		t.Error("RoomAt on a floor the building does not have")
	}
	if _, ok := b.RoomAt(geo.ENU{East: 20, North: 6}, -1); ok {
		t.Error("RoomAt on a negative floor")
	}
	if _, _, ok := b.Bounds(7); ok {
		t.Error("Bounds for unknown floor")
	}
	if _, ok := b.Floor(7); ok {
		t.Error("Floor for unknown level")
	}
}

// The grid index must agree with the naive scan everywhere, including
// outside the building and on every wall line.
func TestGridMatchesLinearScan(t *testing.T) {
	for _, b := range []*Building{Evaluation(), EvaluationTwoFloors()} {
		for level := 0; level < b.Floors(); level++ {
			f, _ := b.Floor(level)
			for e := -2.0; e <= 42.0; e += 0.25 {
				for n := -2.0; n <= 14.0; n += 0.25 {
					p := geo.ENU{East: e, North: n}
					gr, gok := f.RoomAt(p)
					lr, lok := f.roomAtLinear(p)
					if gok != lok || gr.ID != lr.ID {
						t.Fatalf("floor %d at %v: grid (%q,%v) != linear (%q,%v)",
							level, p, gr.ID, gok, lr.ID, lok)
					}
				}
			}
		}
	}
}

func TestRoomByIDMiss(t *testing.T) {
	b := Evaluation()
	for _, id := range []string{"", "N9", "1-N3", "Corridor"} {
		if room, _, ok := b.RoomByID(id); ok {
			t.Errorf("RoomByID(%q) = %q, want miss", id, room.ID)
		}
	}
}

func TestTwoFloorsDisambiguation(t *testing.T) {
	b := EvaluationTwoFloors()
	if b.Floors() != 2 {
		t.Fatalf("floors = %d, want 2", b.Floors())
	}
	p := geo.ENU{East: 20, North: 10} // inside N3's footprint on both floors
	ground, ok := b.RoomAt(p, 0)
	if !ok || ground.ID != "N3" {
		t.Errorf("floor 0: %q ok=%v, want N3", ground.ID, ok)
	}
	upper, ok := b.RoomAt(p, 1)
	if !ok || upper.ID != "1-N3" {
		t.Errorf("floor 1: %q ok=%v, want 1-N3", upper.ID, ok)
	}
	if _, level, ok := b.RoomByID("1-corridor"); !ok || level != 1 {
		t.Errorf("RoomByID(1-corridor): level=%d ok=%v, want level 1", level, ok)
	}
	if _, level, ok := b.RoomByID("corridor"); !ok || level != 0 {
		t.Errorf("RoomByID(corridor): level=%d ok=%v, want level 0", level, ok)
	}
	if len(b.Rooms()) != 22 {
		t.Errorf("total rooms = %d, want 22", len(b.Rooms()))
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	b := Evaluation()
	proj := b.Projection()
	if proj.Origin() != b.Origin() {
		t.Fatal("projection not anchored at the building origin")
	}
	for _, p := range []geo.ENU{{}, {East: 20, North: 6}, {East: 40, North: 12}, {East: -150, North: 6}} {
		back := proj.ToLocal(proj.ToGlobal(p))
		if math.Abs(back.East-p.East) > 1e-6 || math.Abs(back.North-p.North) > 1e-6 {
			t.Errorf("round trip %v -> %v drifts more than a micrometre", p, back)
		}
	}
	// The projection must be metrically honest at building scale: the
	// global distance across the building matches the local one to cm.
	a := proj.ToGlobal(geo.ENU{})
	c := proj.ToGlobal(geo.ENU{East: 40, North: 12})
	want := math.Hypot(40, 12)
	if got := a.DistanceTo(c); math.Abs(got-want) > 0.05 {
		t.Errorf("diagonal = %.3f m global vs %.3f m local", got, want)
	}
}

func TestLocateGlobal(t *testing.T) {
	b := Evaluation()
	inN1 := b.Projection().ToGlobal(geo.ENU{East: 4, North: 9})
	room, ok := b.Locate(inN1, 0)
	if !ok || room.ID != "N1" {
		t.Errorf("Locate = %q ok=%v, want N1", room.ID, ok)
	}
	outdoor := b.Projection().ToGlobal(geo.ENU{East: -500})
	if room, ok := b.Locate(outdoor, 0); ok {
		t.Errorf("Locate outdoors = %q, want miss", room.ID)
	}
}

func TestCrossesWallsAndDoors(t *testing.T) {
	b := Evaluation()
	cases := []struct {
		name string
		p, q geo.ENU
		want bool
	}{
		{"through corridor-N3 wall", geo.ENU{East: 18, North: 6}, geo.ENU{East: 18, North: 8}, true},
		{"through N3 door gap", geo.ENU{East: 20, North: 6}, geo.ENU{East: 20, North: 8}, false},
		{"through S2 door gap", geo.ENU{East: 12, North: 6}, geo.ENU{East: 12, North: 4}, false},
		{"along the corridor", geo.ENU{East: 2, North: 6}, geo.ENU{East: 38, North: 6}, false},
		{"through office divider", geo.ENU{East: 7, North: 9}, geo.ENU{East: 9, North: 9}, true},
		{"through the entrance", geo.ENU{East: -2, North: 6}, geo.ENU{East: 2, North: 6}, false},
		{"through west perimeter", geo.ENU{East: -2, North: 9}, geo.ENU{East: 2, North: 9}, true},
		{"inside one office", geo.ENU{East: 17, North: 8}, geo.ENU{East: 23, North: 11}, false},
		{"unknown floor", geo.ENU{East: 18, North: 6}, geo.ENU{East: 18, North: 8}, false},
	}
	for _, c := range cases {
		floor := 0
		if c.name == "unknown floor" {
			floor = 3
		}
		if got := b.Crosses(c.p, c.q, floor); got != c.want {
			t.Errorf("%s: Crosses(%v, %v) = %v, want %v", c.name, c.p, c.q, got, c.want)
		}
	}
}

func TestWallsBetweenCounts(t *testing.T) {
	b := Evaluation()
	cases := []struct {
		name string
		p, q geo.ENU
		want int
	}{
		{"same room", geo.ENU{East: 18, North: 6}, geo.ENU{East: 22, North: 6}, 0},
		{"corridor into N3 past the door", geo.ENU{East: 20, North: 6}, geo.ENU{East: 16.2, North: 9.8}, 1},
		{"N1 to S1 through both corridor walls", geo.ENU{East: 6, North: 9}, geo.ENU{East: 6.2, North: 2}, 2},
		{"N1 to N3 through two dividers", geo.ENU{East: 4, North: 9}, geo.ENU{East: 20, North: 9.5}, 2},
	}
	for _, c := range cases {
		if got := b.WallsBetween(c.p, c.q, 0); got != c.want {
			t.Errorf("%s: WallsBetween = %d, want %d", c.name, got, c.want)
		}
	}
}

// Every room's door must sit on the room boundary, inside a wall gap:
// stepping from the room centre through the door into the corridor
// must be a legal (non-crossing) path on every floor.
func TestDoorsAreUsable(t *testing.T) {
	b := EvaluationTwoFloors()
	for level := 0; level < b.Floors(); level++ {
		f, _ := b.Floor(level)
		corridorN := (corridorLoN + corridorHiN) / 2
		for _, r := range f.Rooms {
			if r.Width() == floorWidth {
				continue // the corridor itself
			}
			inCorridor := geo.ENU{East: r.Door.East, North: corridorN}
			if b.Crosses(r.Center(), r.Door, level) {
				t.Errorf("floor %d %s: centre -> door crosses a wall", level, r.ID)
			}
			if b.Crosses(r.Door, inCorridor, level) {
				t.Errorf("floor %d %s: door -> corridor crosses a wall", level, r.ID)
			}
			// Away from the door gap, the same wall is solid.
			offGap := geo.ENU{East: r.Center().East + 2, North: corridorN}
			if !b.Crosses(r.Center(), offGap, level) {
				t.Errorf("floor %d %s: centre -> corridor away from the door should cross", level, r.ID)
			}
		}
	}
}
