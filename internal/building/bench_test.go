package building

import (
	"testing"

	"perpos/internal/geo"
)

// benchPoints is a deterministic sweep over the evaluation floor:
// corridor, offices, boundaries and a few outdoor points — the mix the
// trace emulator and the room-number pipeline throw at RoomAt.
func benchPoints() []geo.ENU {
	var pts []geo.ENU
	for e := -1.0; e <= 41.0; e += 1.7 {
		for n := -1.0; n <= 13.0; n += 1.3 {
			pts = append(pts, geo.ENU{East: e, North: n})
		}
	}
	return pts
}

// BenchmarkRoomAt compares the grid-indexed lookup against the naive
// linear scan it replaced. RoomAt runs once per emitted position
// sample, so the grid path must stay sub-microsecond and beat the
// scan.
func BenchmarkRoomAt(b *testing.B) {
	bld := Evaluation()
	f, _ := bld.Floor(0)
	pts := benchPoints()

	b.Run("grid", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, ok := f.RoomAt(pts[i%len(pts)]); ok {
				hits++
			}
		}
		sinkHits = hits
	})
	b.Run("linear", func(b *testing.B) {
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			if _, ok := f.roomAtLinear(pts[i%len(pts)]); ok {
				hits++
			}
		}
		sinkHits = hits
	})
}

// sinkHits keeps the benchmarked lookups observable so the compiler
// cannot elide them.
var sinkHits int

func BenchmarkCrosses(b *testing.B) {
	bld := Evaluation()
	p := geo.ENU{East: 18, North: 6}
	q := geo.ENU{East: 18, North: 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !bld.Crosses(p, q, 0) {
			b.Fatal("expected crossing")
		}
	}
}
