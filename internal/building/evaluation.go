package building

import (
	"fmt"

	"perpos/internal/geo"
)

// The evaluation building reproduces the paper's single-corridor
// office floor (the Fig. 6 setting): a 40 x 12 m storey with a 2 m
// wide east-west corridor flanked by five offices on each side. Office
// doors open onto the corridor through 1.2 m gaps in the corridor
// walls; the building entrance is the corridor's west end.
const (
	floorWidth  = 40.0 // east-west extent, metres
	floorDepth  = 12.0 // north-south extent, metres
	corridorLoN = 5.0  // corridor south wall
	corridorHiN = 7.0  // corridor north wall
	officeWidth = 8.0  // five offices per side
	doorHalf    = 0.6  // door gaps span centre ± doorHalf
)

// evaluationOrigin anchors the evaluation deployments near the paper's
// campus (Aarhus); local (0, 0) is the building's south-west corner.
var evaluationOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// Evaluation returns the paper's evaluation deployment: the
// single-storey office building every E1–E10 experiment runs against.
// Rooms are "corridor", north offices "N1".."N5" (west to east) and
// south offices "S1".."S5".
func Evaluation() *Building {
	return New("evaluation-building", evaluationOrigin, officeFloor(0, ""))
}

// EvaluationTwoFloors returns the two-storey variant used by
// multi-floor scenarios (e.g. per-floor WiFi surveys). The ground
// floor matches Evaluation(); floor 1 has the same plan with room IDs
// prefixed "1-" ("1-corridor", "1-N3", ...).
func EvaluationTwoFloors() *Building {
	return New("evaluation-building-2f", evaluationOrigin,
		officeFloor(0, ""), officeFloor(1, "1-"))
}

// officeFloor builds one storey of the evaluation plan. The room IDs
// get the given prefix ("" for the ground floor).
func officeFloor(level int, prefix string) *Floor {
	rooms := []Room{{
		ID:   prefix + "corridor",
		Min:  geo.ENU{East: 0, North: corridorLoN},
		Max:  geo.ENU{East: floorWidth, North: corridorHiN},
		Door: geo.ENU{East: 0, North: (corridorLoN + corridorHiN) / 2}, // building entrance
	}}
	for i := 0; i < 5; i++ {
		lo := officeWidth * float64(i)
		hi := lo + officeWidth
		centerE := lo + officeWidth/2
		rooms = append(rooms,
			Room{
				ID:   fmt.Sprintf("%sN%d", prefix, i+1),
				Min:  geo.ENU{East: lo, North: corridorHiN},
				Max:  geo.ENU{East: hi, North: floorDepth},
				Door: geo.ENU{East: centerE, North: corridorHiN},
			},
			Room{
				ID:   fmt.Sprintf("%sS%d", prefix, i+1),
				Min:  geo.ENU{East: lo, North: 0},
				Max:  geo.ENU{East: hi, North: corridorLoN},
				Door: geo.ENU{East: centerE, North: corridorLoN},
			},
		)
	}

	h := func(y, e0, e1 float64) Wall {
		return Wall{A: geo.ENU{East: e0, North: y}, B: geo.ENU{East: e1, North: y}}
	}
	v := func(x, n0, n1 float64) Wall {
		return Wall{A: geo.ENU{East: x, North: n0}, B: geo.ENU{East: x, North: n1}}
	}
	walls := []Wall{
		h(0, 0, floorWidth),          // south perimeter
		h(floorDepth, 0, floorWidth), // north perimeter
		v(floorWidth, 0, floorDepth), // east perimeter
		// West perimeter with the entrance gap at the corridor.
		v(0, 0, corridorLoN),
		v(0, corridorHiN, floorDepth),
	}
	for i := 0; i < 5; i++ {
		lo := officeWidth * float64(i)
		hi := lo + officeWidth
		centerE := lo + officeWidth/2
		// Corridor walls, split at each office's door gap.
		walls = append(walls,
			h(corridorHiN, lo, centerE-doorHalf),
			h(corridorHiN, centerE+doorHalf, hi),
			h(corridorLoN, lo, centerE-doorHalf),
			h(corridorLoN, centerE+doorHalf, hi),
		)
		// Dividing walls between adjacent offices.
		if i > 0 {
			walls = append(walls,
				v(lo, corridorHiN, floorDepth),
				v(lo, 0, corridorLoN),
			)
		}
	}
	return NewFloor(level, rooms, walls)
}
