package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"perpos/internal/positioning"
	"perpos/internal/remote"
)

// RPC operations. Each request travels as a JSON envelope inside a
// remote.FrameControl frame; the versioned frame header (magic +
// protocol version) rejects cross-version peers before any envelope is
// parsed.
const (
	opProbe  = "probe"  // liveness + session count
	opTrack  = "track"  // create a session for a target
	opQuery  = "query"  // current position of a target
	opExport = "export" // evict + final checkpoint + ship state (handoff source)
	opImport = "import" // append shipped state + resume (handoff receiver)
	opRevive = "revive" // resume from the node's own store (handoff rollback)
	opPurge  = "purge"  // delete a target's checkpoint files (handoff ack)
	opAdopt  = "adopt"  // open a dead peer's store dir and resurrect targets
)

// request is the control-frame RPC envelope.
type request struct {
	Op      string          `json:"op"`
	Target  string          `json:"target,omitempty"`
	State   json.RawMessage `json:"state,omitempty"`
	Dir     string          `json:"dir,omitempty"`
	Targets []string        `json:"targets,omitempty"`
}

// response is the control-frame RPC reply.
type response struct {
	OK       bool                  `json:"ok"`
	Err      string                `json:"err,omitempty"`
	State    json.RawMessage       `json:"state,omitempty"`
	Pos      *positioning.Position `json:"pos,omitempty"`
	Sessions int                   `json:"sessions,omitempty"`
	Adopted  []string              `json:"adopted,omitempty"`
}

func errResp(format string, args ...any) response {
	return response{Err: fmt.Sprintf(format, args...)}
}

// RemoteError is an application-level failure reported by a node (the
// RPC round-trip itself succeeded). It is never retried by the client:
// the node answered; asking again would get the same answer.
type RemoteError struct {
	Node string
	Op   string
	Msg  string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("cluster: node %s %s: %s", e.Node, e.Op, e.Msg)
}

// rpcClient is the router's connection to one node: a single persistent
// conn, lazily dialed, serialized per node. Transport failures reset
// the conn and are retried with doubling backoff up to Policy.Retries;
// every attempt is bounded by Policy.CallTimeout via conn deadlines.
type rpcClient struct {
	node string
	addr string
	pol  Policy
	dial Dialer

	mu   sync.Mutex
	conn net.Conn
}

func newRPCClient(node, addr string, pol Policy, dial Dialer) *rpcClient {
	if dial == nil {
		dial = defaultDialer
	}
	return &rpcClient{node: node, addr: addr, pol: pol, dial: dial}
}

// call performs one RPC. A nil error with resp.OK unset cannot happen:
// application failures surface as *RemoteError, transport failures as
// the underlying error after retries are exhausted.
func (c *rpcClient) call(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var lastErr error
	backoff := c.pol.RetryBackoff
	for attempt := 0; attempt <= c.pol.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := c.tryLocked(req)
		if err != nil {
			lastErr = err
			continue
		}
		if !resp.OK {
			return resp, &RemoteError{Node: c.node, Op: req.Op, Msg: resp.Err}
		}
		return resp, nil
	}
	return response{}, fmt.Errorf("cluster: rpc %s to node %s: %w", req.Op, c.node, lastErr)
}

func (c *rpcClient) tryLocked(req request) (response, error) {
	if c.conn == nil {
		conn, err := c.dial(c.addr, c.pol.DialTimeout)
		if err != nil {
			return response{}, err
		}
		c.conn = conn
	}
	body, err := json.Marshal(req)
	if err != nil {
		return response{}, err
	}
	_ = c.conn.SetDeadline(time.Now().Add(c.pol.CallTimeout))
	if err := remote.WriteFrame(c.conn, remote.FrameControl, body); err != nil {
		c.resetLocked()
		return response{}, err
	}
	ftype, rbody, err := remote.ReadFrame(c.conn)
	if err != nil {
		c.resetLocked()
		return response{}, err
	}
	_ = c.conn.SetDeadline(time.Time{})
	if ftype != remote.FrameControl {
		c.resetLocked()
		return response{}, fmt.Errorf("cluster: unexpected frame type 0x%02x from node %s", byte(ftype), c.node)
	}
	var resp response
	if err := json.Unmarshal(rbody, &resp); err != nil {
		c.resetLocked()
		return response{}, err
	}
	return resp, nil
}

func (c *rpcClient) resetLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}

// close drops the persistent connection.
func (c *rpcClient) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}
