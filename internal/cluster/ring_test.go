package cluster

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("target-%03d", i)
	}
	return keys
}

func TestRingOwnerDeterministic(t *testing.T) {
	r := newRing(64)
	if _, ok := r.owner("k"); ok {
		t.Fatal("empty ring returned an owner")
	}
	r.add("a")
	r.add("b")
	r.add("c")
	for _, k := range ringKeys(50) {
		o1, ok1 := r.owner(k)
		o2, ok2 := r.owner(k)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner(%s) unstable: %s/%v vs %s/%v", k, o1, ok1, o2, ok2)
		}
		if o1 != "a" && o1 != "b" && o1 != "c" {
			t.Fatalf("owner(%s) = %q, not a member", k, o1)
		}
	}
	// add is idempotent.
	points := len(r.points)
	r.add("a")
	if len(r.points) != points {
		t.Fatalf("re-adding a member grew the ring: %d -> %d", points, len(r.points))
	}
}

// TestRingMinimalMovement is the property the rebalancer relies on:
// adding a member moves keys only TO it, and removing it restores the
// previous assignment exactly — no unrelated key ever changes hands.
func TestRingMinimalMovement(t *testing.T) {
	r := newRing(64)
	for _, m := range []string{"a", "b", "c"} {
		r.add(m)
	}
	keys := ringKeys(300)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.owner(k)
	}

	r.add("d")
	moved := 0
	for _, k := range keys {
		after, _ := r.owner(k)
		if after != before[k] {
			if after != "d" {
				t.Fatalf("key %s moved %s→%s — only moves TO the new member are allowed", k, before[k], after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	if moved == len(keys) {
		t.Fatal("every key moved — not a consistent hash")
	}

	r.remove("d")
	for _, k := range keys {
		if after, _ := r.owner(k); after != before[k] {
			t.Fatalf("key %s not restored after remove: %s, want %s", k, after, before[k])
		}
	}
}

// TestRingDistribution: with 64 virtual replicas the spread over four
// members is rough but no member may be starved or hoard the ring.
func TestRingDistribution(t *testing.T) {
	r := newRing(64)
	members := []string{"a", "b", "c", "d"}
	for _, m := range members {
		r.add(m)
	}
	counts := make(map[string]int)
	keys := ringKeys(1000)
	for _, k := range keys {
		o, ok := r.owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		counts[o]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.08 || share > 0.50 {
			t.Errorf("member %s owns %.0f%% of keys (counts %v)", m, share*100, counts)
		}
	}
}
