package cluster

import (
	"bytes"
	"errors"
	"hash/fnv"
	"testing"
	"time"

	"perpos/internal/catalog"
	"perpos/internal/checkpoint"
	"perpos/internal/core"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/obs"
	"perpos/internal/positioning"
	"perpos/internal/runtime"
	"perpos/internal/trace"
)

var testOrigin = geo.Point{Lat: 56.1629, Lon: 10.2039}

// seedFrom derives a deterministic per-target seed.
func seedFrom(id string) int64 {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int64(h.Sum32() & 0x7fffffff)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// kalmanSessionConfig is the cluster test fixture: the catalog's
// GPS→Kalman blueprint with a per-target simulated receiver. The
// Kalman filter carries covariance state, so a handoff that is not
// bit-exact shows up as diverging filter output.
func kalmanSessionConfig(t testing.TB) runtime.SessionConfig {
	t.Helper()
	bp, err := catalog.KalmanBlueprint(geo.NewProjection(testOrigin), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return runtime.SessionConfig{
		Blueprint: bp,
		Overrides: func(sessionID string) []core.InstantiateOption {
			seed := seedFrom(sessionID)
			tr := trace.OutdoorTrack(testOrigin, seed, 2, 100, 1.4, time.Second)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed, ColdStart: time.Second, Loop: true})
				}),
			}
		},
		Provider: positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:  16,
	}
}

// fastPolicy shrinks every cluster timescale so chaos e2e tests settle
// in tens of milliseconds.
func fastPolicy() Policy {
	return Policy{
		Replicas:             64,
		ProbeInterval:        10 * time.Millisecond,
		MaxConsecutiveErrors: 2,
		DeathAfter:           60 * time.Millisecond,
		HandoffConcurrency:   4,
		DialTimeout:          200 * time.Millisecond,
		CallTimeout:          2 * time.Second,
		Retries:              -1,
		RetryBackoff:         2 * time.Millisecond,
	}
}

// startTestNode starts a node over a t.TempDir() store and registers
// cleanup. Killed nodes are left alone — Kill already closed the store.
func startTestNode(t testing.TB, id string, ckptEvery int) *Node {
	t.Helper()
	n, err := StartNode(NodeConfig{
		ID:              id,
		Dir:             t.TempDir(),
		Session:         kalmanSessionConfig(t),
		CheckpointEvery: ckptEvery,
		AdoptLockWait:   2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !n.Down() {
			n.Close()
		}
	})
	return n
}

// kalmanComponent extracts the kalman node's marshalled component
// state — the bytes the bit-exactness assertions compare.
func kalmanComponent(t testing.TB, gs core.GraphState) []byte {
	t.Helper()
	for _, ns := range gs.Nodes {
		if ns.ID == "kalman" {
			return ns.Component
		}
	}
	t.Fatal("graph state has no kalman node")
	return nil
}

func TestTrackAndQuery(t *testing.T) {
	hub := obs.New()
	n1 := startTestNode(t, "n1", 4)
	n2 := startTestNode(t, "n2", 4)
	r := NewRouter(RouterConfig{Policy: fastPolicy(), Metrics: hub, Logf: t.Logf})
	defer r.Close()
	if err := r.Join(n1.Info()); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(n2.Info()); err != nil {
		t.Fatal(err)
	}

	targets := []string{"tag-1", "tag-2", "tag-3", "tag-4", "tag-5", "tag-6"}
	for _, target := range targets {
		if err := r.Track(target); err != nil {
			t.Fatalf("track %s: %v", target, err)
		}
	}
	if n1.Sessions()+n2.Sessions() != len(targets) {
		t.Fatalf("sessions = %d+%d, want %d", n1.Sessions(), n2.Sessions(), len(targets))
	}
	// Tracking is idempotent.
	if err := r.Track("tag-1"); err != nil {
		t.Fatal(err)
	}
	if got := n1.Sessions() + n2.Sessions(); got != len(targets) {
		t.Fatalf("sessions after re-track = %d, want %d", got, len(targets))
	}

	// Before any sample: tracked, no fix, no error.
	res, err := r.Position("tag-1")
	if err != nil {
		t.Fatal(err)
	}
	if res.HasFix || res.Stale {
		t.Fatalf("pre-pump position = %+v, want no fix, not stale", res)
	}

	for _, n := range []*Node{n1, n2} {
		if err := n.Pump(6); err != nil {
			t.Fatal(err)
		}
	}
	for _, target := range targets {
		res, err := r.Position(target)
		if err != nil {
			t.Fatalf("position %s: %v", target, err)
		}
		if !res.HasFix {
			t.Fatalf("position %s: no fix after pumping", target)
		}
		if res.Stale {
			t.Fatalf("position %s: stale answer from a healthy cluster", target)
		}
		node, inFlight, ok := r.NodeOf(target)
		if !ok || inFlight {
			t.Fatalf("NodeOf(%s) = %q,%v,%v", target, node, inFlight, ok)
		}
		if node != res.Node {
			t.Fatalf("NodeOf(%s) = %s but answer came from %s", target, node, res.Node)
		}
	}

	if _, err := r.Position("nobody"); !errors.Is(err, ErrUnknownTarget) {
		t.Fatalf("Position(unknown) = %v, want ErrUnknownTarget", err)
	}
	if got := len(r.Targets()); got != len(targets) {
		t.Fatalf("Targets() = %d, want %d", got, len(targets))
	}
}

func TestJoinDuplicateAndTrackWithoutNodes(t *testing.T) {
	r := NewRouter(RouterConfig{Policy: fastPolicy()})
	defer r.Close()
	if err := r.Track("t"); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Track with no nodes = %v, want ErrNoNodes", err)
	}
	n1 := startTestNode(t, "n1", 4)
	if err := r.Join(n1.Info()); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(n1.Info()); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate Join = %v, want ErrDuplicateNode", err)
	}
}

// TestMoveHandoffBitExact moves one live session between nodes and
// verifies the full handoff contract: the session leaves the source,
// resumes on the destination with bit-identical Kalman filter state,
// the source's files are purged, and the counters record one handoff.
func TestMoveHandoffBitExact(t *testing.T) {
	hub := obs.New()
	n1 := startTestNode(t, "n1", 4)
	n2 := startTestNode(t, "n2", 4)
	nodes := map[string]*Node{"n1": n1, "n2": n2}
	r := NewRouter(RouterConfig{Policy: fastPolicy(), Metrics: hub, Logf: t.Logf})
	defer r.Close()
	for _, n := range nodes {
		if err := r.Join(n.Info()); err != nil {
			t.Fatal(err)
		}
	}
	const target = "moving-tag"
	if err := r.Track(target); err != nil {
		t.Fatal(err)
	}
	srcID, _, _ := r.NodeOf(target)
	src := nodes[srcID]
	dstID := "n1"
	if srcID == "n1" {
		dstID = "n2"
	}
	dst := nodes[dstID]

	// Warm the filter past cold start and through a few checkpoints.
	if err := src.Pump(10); err != nil {
		t.Fatal(err)
	}
	before, err := r.Position(target)
	if err != nil {
		t.Fatal(err)
	}
	if !before.HasFix {
		t.Fatal("no fix before handoff")
	}

	if err := r.Move(target, dstID); err != nil {
		t.Fatalf("Move: %v", err)
	}

	// Route flipped; source no longer runs the session.
	node, inFlight, ok := r.NodeOf(target)
	if !ok || inFlight || node != dstID {
		t.Fatalf("route after move = %q,%v,%v; want %s settled", node, inFlight, ok, dstID)
	}
	if _, ok := src.Manager().Get(target); ok {
		t.Error("session still live on the source after handoff")
	}
	sess, ok := dst.Manager().Get(target)
	if !ok {
		t.Fatal("session missing on the destination")
	}

	// Bit-exact rehydration: the destination's live graph state equals
	// the shipped durable record, byte for byte, before any new sample.
	shipped, err := dst.Store().Load(target)
	if err != nil {
		t.Fatal(err)
	}
	live, err := sess.Graph().SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(kalmanComponent(t, shipped.Graph), kalmanComponent(t, live)) {
		t.Errorf("kalman state not bit-exact after handoff:\nshipped %s\nlive    %s",
			kalmanComponent(t, shipped.Graph), kalmanComponent(t, live))
	}

	// The source's copy was purged after the import ack.
	if _, err := src.Store().Load(target); !errors.Is(err, checkpoint.ErrNoState) {
		t.Errorf("source Load after purge = %v, want ErrNoState", err)
	}

	// The moved session keeps producing positions near where it left off.
	if err := dst.Pump(3); err != nil {
		t.Fatal(err)
	}
	after, err := r.Position(target)
	if err != nil {
		t.Fatal(err)
	}
	if !after.HasFix || after.Stale {
		t.Fatalf("post-move position = %+v, want fresh fix", after)
	}
	if d := before.Pos.DistanceTo(after.Pos); d > 50 {
		t.Errorf("position jumped %.1fm across the handoff", d)
	}

	if got := hub.ClusterHandoffs.Value(); got != 1 {
		t.Errorf("ClusterHandoffs = %d, want 1", got)
	}
	if got := hub.ClusterHandoffFailed.Value(); got != 0 {
		t.Errorf("ClusterHandoffFailed = %d, want 0", got)
	}
}

// TestMoveImportFailureRevivesOnSource: the destination dies before the
// import, so the handoff must roll back — the session revives on the
// source from its detached-but-unpurged files and the route never
// flips.
func TestMoveImportFailureRevivesOnSource(t *testing.T) {
	hub := obs.New()
	n1 := startTestNode(t, "n1", 4)
	n2 := startTestNode(t, "n2", 4)
	nodes := map[string]*Node{"n1": n1, "n2": n2}
	r := NewRouter(RouterConfig{Policy: fastPolicy(), Metrics: hub, Logf: t.Logf})
	defer r.Close()
	for _, n := range nodes {
		if err := r.Join(n.Info()); err != nil {
			t.Fatal(err)
		}
	}
	const target = "sticky-tag"
	if err := r.Track(target); err != nil {
		t.Fatal(err)
	}
	srcID, _, _ := r.NodeOf(target)
	src := nodes[srcID]
	dstID := "n1"
	if srcID == "n1" {
		dstID = "n2"
	}
	if err := src.Pump(10); err != nil {
		t.Fatal(err)
	}

	nodes[dstID].Kill(nil) // hard death between route decision and import

	if err := r.Move(target, dstID); err == nil {
		t.Fatal("Move to a dead node succeeded, want error")
	}
	node, inFlight, ok := r.NodeOf(target)
	if !ok || inFlight || node != srcID {
		t.Fatalf("route after failed move = %q,%v,%v; want %s settled", node, inFlight, ok, srcID)
	}
	sess, ok := src.Manager().Get(target)
	if !ok {
		t.Fatal("session not revived on the source")
	}
	if _, err := sess.StepN(1); err != nil {
		t.Fatalf("revived session cannot step: %v", err)
	}
	if got := hub.ClusterHandoffFailed.Value(); got != 1 {
		t.Errorf("ClusterHandoffFailed = %d, want 1", got)
	}
	if got := hub.ClusterHandoffs.Value(); got != 0 {
		t.Errorf("ClusterHandoffs = %d, want 0", got)
	}
}

// TestLeaveDrains: a graceful Leave hands every owned session to the
// remaining members and drops the node from the membership.
func TestLeaveDrains(t *testing.T) {
	n1 := startTestNode(t, "n1", 4)
	n2 := startTestNode(t, "n2", 4)
	r := NewRouter(RouterConfig{Policy: fastPolicy(), Logf: t.Logf})
	defer r.Close()
	if err := r.Join(n1.Info()); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(n2.Info()); err != nil {
		t.Fatal(err)
	}
	targets := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, target := range targets {
		if err := r.Track(target); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []*Node{n1, n2} {
		if err := n.Pump(6); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Leave("n2"); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if got := n1.Sessions(); got != len(targets) {
		t.Fatalf("n1 sessions after drain = %d, want %d", got, len(targets))
	}
	for _, target := range targets {
		node, inFlight, ok := r.NodeOf(target)
		if !ok || inFlight || node != "n1" {
			t.Fatalf("route %s = %q,%v,%v; want n1 settled", target, node, inFlight, ok)
		}
	}
	members := r.Members()
	if len(members) != 1 || members[0].ID != "n1" {
		t.Fatalf("members after leave = %+v, want just n1", members)
	}
}
