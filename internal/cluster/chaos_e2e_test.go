package cluster

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"perpos/internal/chaos"
	"perpos/internal/obs"
)

// clusterFixture is the shared e2e scaffold: N nodes, a router over
// them, and a target population tracked and pumped past its first
// checkpoints.
type clusterFixture struct {
	nodes   map[string]*Node
	order   []string
	router  *Router
	hub     *obs.Metrics
	targets []string
}

func startCluster(t *testing.T, pol Policy, nodeIDs []string, targetCount int, dialer Dialer) *clusterFixture {
	t.Helper()
	f := &clusterFixture{nodes: make(map[string]*Node), order: nodeIDs, hub: obs.New()}
	f.router = NewRouter(RouterConfig{Policy: pol, Metrics: f.hub, Dialer: dialer, Logf: t.Logf})
	t.Cleanup(f.router.Close)
	for _, id := range nodeIDs {
		n := startTestNode(t, id, 4)
		f.nodes[id] = n
		if err := f.router.Join(n.Info()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < targetCount; i++ {
		target := fmt.Sprintf("tag-%02d", i)
		f.targets = append(f.targets, target)
		if err := f.router.Track(target); err != nil {
			t.Fatalf("track %s: %v", target, err)
		}
	}
	return f
}

// pumpAll advances every live node's sessions deterministically.
func (f *clusterFixture) pumpAll(t *testing.T, rounds int) {
	t.Helper()
	for _, id := range f.order {
		n := f.nodes[id]
		if n.Down() {
			continue
		}
		if err := n.Pump(rounds); err != nil && err != ErrNodeDown {
			t.Fatal(err)
		}
	}
}

// positions queries every target, requiring a fresh fix.
func (f *clusterFixture) positions(t *testing.T) map[string]PositionResult {
	t.Helper()
	out := make(map[string]PositionResult, len(f.targets))
	for _, target := range f.targets {
		res, err := f.router.Position(target)
		if err != nil {
			t.Fatalf("position %s: %v", target, err)
		}
		if !res.HasFix {
			t.Fatalf("position %s: no fix", target)
		}
		out[target] = res
	}
	return out
}

// routesSettledOff reports whether every route is off the given node
// with no handoff in flight.
func (f *clusterFixture) routesSettledOff(dead string) bool {
	if f.router.InFlight() != 0 {
		return false
	}
	for _, target := range f.targets {
		node, inFlight, ok := f.router.NodeOf(target)
		if !ok || inFlight || node == dead {
			return false
		}
	}
	return true
}

// TestClusterNodeDeathFailover is the acceptance scenario: a 3-node
// cluster tracking 60 targets survives a hard node kill. Every session
// from the dead node resumes on a survivor from its last durable
// checkpoint — Kalman state bit-exact — zero targets are lost, and the
// post-resurrection positions stay within a bounded gap of the
// pre-kill track.
func TestClusterNodeDeathFailover(t *testing.T) {
	f := startCluster(t, fastPolicy(), []string{"n1", "n2", "n3"}, 60, nil)
	f.router.Start()

	// 18 rounds with CheckpointEvery=4: every session has durable state
	// from round 16, two samples behind the live filter at kill time.
	f.pumpAll(t, 18)
	preKill := f.positions(t)

	// The victim is the node carrying the most sessions — the worst case.
	victimID := ""
	for id, n := range f.nodes {
		if victimID == "" || n.Sessions() > f.nodes[victimID].Sessions() {
			victimID = id
		}
	}
	victim := f.nodes[victimID]
	var moved, unmoved []string
	homeBefore := make(map[string]string)
	for _, target := range f.targets {
		node, _, _ := f.router.NodeOf(target)
		homeBefore[target] = node
		if node == victimID {
			moved = append(moved, target)
		} else {
			unmoved = append(unmoved, target)
		}
	}
	if len(moved) == 0 || len(unmoved) == 0 {
		t.Fatalf("degenerate split: victim %s owns %d/%d targets", victimID, len(moved), len(f.targets))
	}
	t.Logf("killing %s (%d sessions)", victimID, len(moved))
	victim.Kill(nil)

	waitFor(t, 10*time.Second, "failover to settle", func() bool {
		return f.routesSettledOff(victimID)
	})

	// Zero targets lost: every target routed, every session live on a
	// survivor.
	if got := len(f.router.Targets()); got != len(f.targets) {
		t.Fatalf("targets after failover = %d, want %d", got, len(f.targets))
	}
	liveSessions := 0
	for id, n := range f.nodes {
		if id != victimID {
			liveSessions += n.Sessions()
		}
	}
	if liveSessions != len(f.targets) {
		t.Fatalf("live sessions after failover = %d, want %d", liveSessions, len(f.targets))
	}
	// Unmoved targets never changed homes.
	for _, target := range unmoved {
		node, _, _ := f.router.NodeOf(target)
		if node != homeBefore[target] {
			t.Errorf("unmoved target %s changed home %s→%s", target, homeBefore[target], node)
		}
	}

	// Bit-exact rehydration: before any new sample, each resurrected
	// session's live Kalman state equals the durable record it was
	// resumed from.
	for _, target := range moved {
		node, _, _ := f.router.NodeOf(target)
		survivor := f.nodes[node]
		sess, ok := survivor.Manager().Get(target)
		if !ok {
			t.Fatalf("moved target %s has no session on %s", target, node)
		}
		durable, err := survivor.Store().Load(target)
		if err != nil {
			t.Fatalf("moved target %s has no durable state on %s: %v", target, node, err)
		}
		live, err := sess.Graph().SnapshotState()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(kalmanComponent(t, durable.Graph), kalmanComponent(t, live)) {
			t.Fatalf("target %s: kalman state not bit-exact after resurrection", target)
		}
	}

	if got := f.hub.ClusterFailovers.Value(); got != 1 {
		t.Errorf("ClusterFailovers = %d, want 1", got)
	}
	if got := f.hub.ClusterResurrected.Value(); got != uint64(len(moved)) {
		t.Errorf("ClusterResurrected = %d, want %d", got, len(moved))
	}

	// Bounded gap: resurrected sessions pick the track back up near
	// where the dead node left it. The checkpoint lag is 2 samples
	// (~3m at walking speed); 50m leaves room for GPS noise.
	f.pumpAll(t, 4)
	for _, target := range moved {
		res, err := f.router.Position(target)
		if err != nil {
			t.Fatalf("position %s after failover: %v", target, err)
		}
		if !res.HasFix || res.Stale {
			t.Fatalf("position %s after failover = %+v, want fresh fix", target, res)
		}
		if d := preKill[target].Pos.DistanceTo(res.Pos); d > 50 {
			t.Errorf("target %s: position gap %.1fm across failover", target, d)
		}
	}
}

// TestClusterJoinRebalance: a node joining a loaded cluster triggers a
// rebalance that moves exactly the minimal hash range — every moved
// target lands on the joiner, and unmoved sessions are untouched (same
// live session object, no pause, no drop).
func TestClusterJoinRebalance(t *testing.T) {
	f := startCluster(t, fastPolicy(), []string{"n1", "n2"}, 40, nil)
	f.pumpAll(t, 10)
	f.positions(t)

	homeBefore := make(map[string]string)
	sessBefore := make(map[string]any)
	for _, target := range f.targets {
		node, _, _ := f.router.NodeOf(target)
		homeBefore[target] = node
		s, ok := f.nodes[node].Manager().Get(target)
		if !ok {
			t.Fatalf("no session for %s on %s", target, node)
		}
		sessBefore[target] = s
	}

	joiner := startTestNode(t, "n3", 4)
	f.nodes["n3"] = joiner
	f.order = append(f.order, "n3")
	if err := f.router.Join(joiner.Info()); err != nil {
		t.Fatal(err)
	}
	if got := f.router.InFlight(); got != 0 {
		t.Fatalf("in-flight after Join returned = %d, want 0", got)
	}

	moved := 0
	for _, target := range f.targets {
		node, _, ok := f.router.NodeOf(target)
		if !ok {
			t.Fatalf("target %s unrouted after join", target)
		}
		if node != homeBefore[target] {
			// The consistent-hashing guarantee: keys move only TO the
			// new member.
			if node != "n3" {
				t.Errorf("target %s moved %s→%s, not to the joiner", target, homeBefore[target], node)
			}
			moved++
			continue
		}
		// Unmoved: the very same session object is still live — it was
		// never paused, evicted or recreated, so no sample was dropped.
		s, ok := f.nodes[node].Manager().Get(target)
		if !ok || any(s) != sessBefore[target] {
			t.Errorf("unmoved target %s was disturbed by the rebalance", target)
		}
	}
	if moved == 0 {
		t.Fatal("join moved no targets")
	}
	if got := joiner.Sessions(); got != moved {
		t.Errorf("joiner sessions = %d, want %d", got, moved)
	}
	if got := f.hub.ClusterRebalanced.Value(); got != uint64(moved) {
		t.Errorf("ClusterRebalanced = %d, want %d", got, moved)
	}
	if got := f.hub.ClusterHandoffs.Value(); got != uint64(moved) {
		t.Errorf("ClusterHandoffs = %d, want %d", got, moved)
	}

	// The whole population keeps producing fresh fixes.
	f.pumpAll(t, 4)
	for _, res := range f.positions(t) {
		if res.Stale {
			t.Fatalf("stale answer after a clean rebalance: %+v", res)
		}
	}
}

// TestClusterPartitionQuarantineRecovery: a network partition (not a
// crash) trips the node's breaker and the router serves cached
// positions marked Stale — never an error — until the partition heals
// before the death grace period; then fresh answers resume and no
// session has moved.
func TestClusterPartitionQuarantineRecovery(t *testing.T) {
	link := chaos.NewLink()
	var wrapAddr string
	var mu sync.Mutex
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		wrapped := addr == wrapAddr
		mu.Unlock()
		if wrapped {
			return link.Dial(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, timeout)
			})
		}
		return net.DialTimeout("tcp", addr, timeout)
	}

	pol := fastPolicy()
	pol.DeathAfter = 10 * time.Second // partitions are not deaths here
	f := &clusterFixture{nodes: make(map[string]*Node), order: []string{"n1", "n2"}, hub: obs.New()}
	f.router = NewRouter(RouterConfig{Policy: pol, Metrics: f.hub, Dialer: dialer, Logf: t.Logf})
	t.Cleanup(f.router.Close)
	for _, id := range f.order {
		n := startTestNode(t, id, 4)
		f.nodes[id] = n
		if id == "n2" {
			// Wrap BEFORE the router's first dial so every connection to
			// n2 — including the persistent RPC conn — runs through the
			// fault link.
			mu.Lock()
			wrapAddr = n.Addr()
			mu.Unlock()
		}
		if err := f.router.Join(n.Info()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		target := fmt.Sprintf("tag-%02d", i)
		f.targets = append(f.targets, target)
		if err := f.router.Track(target); err != nil {
			t.Fatalf("track %s: %v", target, err)
		}
	}
	f.router.Start()
	f.pumpAll(t, 8)
	pre := f.positions(t)

	// A target homed on the node about to be partitioned.
	victimTarget := ""
	for _, target := range f.targets {
		if node, _, _ := f.router.NodeOf(target); node == "n2" {
			victimTarget = target
			break
		}
	}
	if victimTarget == "" {
		t.Fatal("no target routed to n2")
	}

	link.Kill(nil)
	waitFor(t, 5*time.Second, "n2 quarantine", func() bool {
		for _, m := range f.router.Members() {
			if m.ID == "n2" {
				return m.Down
			}
		}
		return false
	})

	// Degradation contract: cached position, marked stale, no error.
	res, err := f.router.Position(victimTarget)
	if err != nil {
		t.Fatalf("Position during partition = %v, want degraded answer", err)
	}
	if !res.Stale || !res.HasFix {
		t.Fatalf("Position during partition = %+v, want stale cached fix", res)
	}
	if res.Pos != pre[victimTarget].Pos {
		t.Errorf("stale answer %+v is not the cached position %+v", res.Pos, pre[victimTarget].Pos)
	}
	if got := f.hub.ClusterStaleServed.Value(); got == 0 {
		t.Error("ClusterStaleServed = 0, want > 0")
	}

	link.Heal()
	waitFor(t, 5*time.Second, "n2 recovery", func() bool {
		for _, m := range f.router.Members() {
			if m.ID == "n2" {
				return !m.Down
			}
		}
		return false
	})
	res, err = f.router.Position(victimTarget)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stale || !res.HasFix {
		t.Fatalf("Position after heal = %+v, want fresh fix", res)
	}

	// A quarantine that healed in time moved nothing and killed nobody.
	if got := f.hub.ClusterFailovers.Value(); got != 0 {
		t.Errorf("ClusterFailovers = %d, want 0", got)
	}
	if node, _, _ := f.router.NodeOf(victimTarget); node != "n2" {
		t.Errorf("target %s moved to %s during a transient partition", victimTarget, node)
	}
}

// TestClusterSlowPeerDegradation: while a slow joiner drags handoffs
// out, queries against mid-handoff targets serve the cached position
// marked Stale — the rebalance is invisible to callers except for
// staleness, never an error.
func TestClusterSlowPeerDegradation(t *testing.T) {
	link := chaos.NewLink()
	link.SetDelay(30 * time.Millisecond)
	var wrapAddr string
	var mu sync.Mutex
	dialer := func(addr string, timeout time.Duration) (net.Conn, error) {
		mu.Lock()
		wrapped := addr == wrapAddr
		mu.Unlock()
		if wrapped {
			return link.Dial(func() (net.Conn, error) {
				return net.DialTimeout("tcp", addr, timeout)
			})
		}
		return net.DialTimeout("tcp", addr, timeout)
	}

	f := startCluster(t, fastPolicy(), []string{"n1", "n2"}, 30, dialer)
	f.pumpAll(t, 10)
	f.positions(t) // fill the degradation cache

	joiner := startTestNode(t, "n3", 4)
	f.nodes["n3"] = joiner
	mu.Lock()
	wrapAddr = joiner.Addr()
	mu.Unlock()

	done := make(chan error, 1)
	go func() { done <- f.router.Join(joiner.Info()) }()

	staleSeen := 0
	for joining := true; joining; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("Join: %v", err)
			}
			joining = false
		default:
			for _, target := range f.targets {
				res, err := f.router.Position(target)
				if err != nil {
					t.Fatalf("Position during slow rebalance = %v, want degraded answer", err)
				}
				if res.Stale {
					staleSeen++
				}
			}
			time.Sleep(time.Millisecond)
		}
	}
	if staleSeen == 0 {
		t.Error("no stale answers observed during a slow rebalance — degradation path never exercised")
	}
	if got := f.router.InFlight(); got != 0 {
		t.Errorf("in-flight after join = %d, want 0", got)
	}
	moved := 0
	for _, target := range f.targets {
		if node, _, _ := f.router.NodeOf(target); node == "n3" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("slow join moved no targets")
	}
	t.Logf("slow join: %d targets moved, %d stale answers served", moved, staleSeen)
}
