package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"perpos/internal/chaos"
	"perpos/internal/checkpoint"
	"perpos/internal/remote"
	"perpos/internal/runtime"
)

// NodeConfig configures one cluster node.
type NodeConfig struct {
	// ID names the node on the ring and in metrics.
	ID string
	// Dir is the node's checkpoint store directory. The node Opens it
	// exclusively (flock); on node death the lock dies with it, which
	// is what lets a survivor adopt the directory.
	Dir string
	// Addr is the listen address (default "127.0.0.1:0").
	Addr string
	// Session is the session template for this node's manager. Its
	// Checkpoints field is replaced by the node's own store; everything
	// else (blueprint, overrides, observability) passes through and
	// must be identical across nodes, so a handed-off target continues
	// the same pipeline on its new home.
	Session runtime.SessionConfig
	// Store tunes the node's checkpoint store.
	Store checkpoint.Options
	// CheckpointEvery checkpoints each session every this many pump
	// rounds (default 8; <0 disables periodic checkpoints).
	CheckpointEvery int
	// AdoptLockWait bounds how long an adopt RPC retries Open on a dead
	// peer's still-locked directory (default 1s). The flock releases
	// when the peer's store closes or its process dies; two survivors
	// adopting from the same directory also contend here and take
	// turns.
	AdoptLockWait time.Duration
}

// Node is one runtime process of the session tier: a runtime.Manager,
// its checkpoint store, and a control-frame RPC server the Router (and
// peers, transitively through the Router) drives. Sessions are stepped
// deterministically with Pump — or continuously with StartPump — so
// chaos tests can interleave traffic and faults without real-time
// races.
type Node struct {
	id      string
	dir     string
	mgr     *runtime.Manager
	store   *checkpoint.Store
	ln      net.Listener
	ckptEv  int
	lockTry time.Duration

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	killed   bool
	rounds   int
	pumpStop chan struct{}
	wg       sync.WaitGroup
	pumpWG   sync.WaitGroup
}

// Node implements chaos.Controllable so kill scripts drive it like any
// other fault target; Heal is a no-op — a hard-killed process does not
// come back, a replacement node Joins instead.
var _ chaos.Controllable = (*Node)(nil)

// StartNode opens the node's store, builds its manager and starts its
// RPC listener.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: node needs an ID")
	}
	if cfg.Dir == "" {
		return nil, errors.New("cluster: node needs a checkpoint dir")
	}
	store, err := checkpoint.Open(cfg.Dir, cfg.Store)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.ID, err)
	}
	scfg := cfg.Session
	scfg.Checkpoints = store
	mgr, err := runtime.NewManager(scfg)
	if err != nil {
		_ = store.Close()
		return nil, fmt.Errorf("cluster: node %s: %w", cfg.ID, err)
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		mgr.Close()
		_ = store.Close()
		return nil, fmt.Errorf("cluster: node %s: listen %s: %w", cfg.ID, addr, err)
	}
	ckptEv := cfg.CheckpointEvery
	if ckptEv == 0 {
		ckptEv = 8
	}
	lockTry := cfg.AdoptLockWait
	if lockTry <= 0 {
		lockTry = time.Second
	}
	n := &Node{
		id:      cfg.ID,
		dir:     cfg.Dir,
		mgr:     mgr,
		store:   store,
		ln:      ln,
		ckptEv:  ckptEv,
		lockTry: lockTry,
		conns:   make(map[net.Conn]struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// ID returns the node's cluster identity.
func (n *Node) ID() string { return n.id }

// Addr returns the bound RPC address.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Dir returns the checkpoint store directory.
func (n *Node) Dir() string { return n.dir }

// Info returns the node's routing descriptor for Router.Join.
func (n *Node) Info() NodeInfo {
	return NodeInfo{ID: n.id, Addr: n.Addr(), Dir: n.dir}
}

// Manager exposes the node's session manager (tests, local inspection).
func (n *Node) Manager() *runtime.Manager { return n.mgr }

// Store exposes the node's checkpoint store (tests, local inspection).
func (n *Node) Store() *checkpoint.Store { return n.store }

// Sessions returns the node's live session count.
func (n *Node) Sessions() int { return n.mgr.Len() }

// Down reports whether the node was killed.
func (n *Node) Down() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.killed
}

// Pump advances every live session one step per round, checkpointing
// each session every CheckpointEvery rounds — the deterministic
// traffic driver. Sessions that error, close mid-round (a concurrent
// handoff export) or exhaust their trace are skipped, not fatal.
func (n *Node) Pump(rounds int) error {
	for i := 0; i < rounds; i++ {
		n.mu.Lock()
		if n.killed {
			n.mu.Unlock()
			return ErrNodeDown
		}
		n.rounds++
		round := n.rounds
		n.mu.Unlock()
		ckpt := n.ckptEv > 0 && round%n.ckptEv == 0
		for _, id := range n.mgr.IDs() {
			s, ok := n.mgr.Get(id)
			if !ok {
				continue
			}
			if _, err := s.StepN(1); err != nil {
				continue
			}
			if ckpt {
				_, _ = s.Checkpoint()
			}
		}
	}
	return nil
}

// StartPump pumps continuously at the given interval until StopPump,
// Kill or Close — the live-traffic mode the perpos-run demo uses.
func (n *Node) StartPump(interval time.Duration) {
	n.mu.Lock()
	if n.killed || n.pumpStop != nil {
		n.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	n.pumpStop = stop
	n.mu.Unlock()
	n.pumpWG.Add(1)
	go func() {
		defer n.pumpWG.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				if err := n.Pump(1); err != nil {
					return
				}
			}
		}
	}()
}

// StopPump halts a StartPump loop and waits for it.
func (n *Node) StopPump() {
	n.mu.Lock()
	if n.pumpStop != nil {
		close(n.pumpStop)
		n.pumpStop = nil
	}
	n.mu.Unlock()
	n.pumpWG.Wait()
}

// Kill simulates hard node death: the RPC listener and every live
// connection drop, the pump stops, and the checkpoint store closes —
// releasing the directory flock exactly as OS process death would, so
// survivors can adopt the directory. In-memory sessions are abandoned
// WITHOUT final checkpoints: recovery works from the last durable
// record, like a real crash. The error argument is accepted for
// chaos.Controllable; it is not used.
func (n *Node) Kill(error) {
	n.shutdownNet()
	_ = n.store.Close()
}

// Heal implements chaos.Controllable as a documented no-op: a dead
// process does not heal in place — a replacement node starts fresh and
// Joins the router.
func (n *Node) Heal() {}

// Close shuts the node down gracefully: pump stopped, listener closed,
// manager closed (final checkpoints for every session), store closed.
func (n *Node) Close() {
	n.shutdownNet()
	n.mgr.Close()
	_ = n.store.Close()
}

// shutdownNet stops traffic: pump, listener, live conns.
func (n *Node) shutdownNet() {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		n.pumpWG.Wait()
		n.wg.Wait()
		return
	}
	n.killed = true
	if n.pumpStop != nil {
		close(n.pumpStop)
		n.pumpStop = nil
	}
	_ = n.ln.Close()
	for c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.pumpWG.Wait()
	n.wg.Wait()
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.mu.Lock()
		if n.killed {
			n.mu.Unlock()
			_ = conn.Close()
			return
		}
		n.conns[conn] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *Node) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
		_ = conn.Close()
	}()
	for {
		ftype, body, err := remote.ReadFrame(conn)
		if err != nil {
			return // EOF, kill, or incompatible peer
		}
		var resp response
		if ftype != remote.FrameControl {
			resp = errResp("unexpected frame type 0x%02x on control link", byte(ftype))
		} else {
			var req request
			if err := json.Unmarshal(body, &req); err != nil {
				resp = errResp("bad request: %v", err)
			} else {
				resp = n.handle(req)
			}
		}
		out, err := json.Marshal(resp)
		if err != nil {
			out, _ = json.Marshal(errResp("encode response: %v", err))
		}
		if err := remote.WriteFrame(conn, remote.FrameControl, out); err != nil {
			return
		}
	}
}

// handle executes one RPC against the node's manager and store.
func (n *Node) handle(req request) response {
	switch req.Op {
	case opProbe:
		return response{OK: true, Sessions: n.mgr.Len()}

	case opTrack:
		if _, err := n.mgr.GetOrCreate(req.Target); err != nil {
			return errResp("track %q: %v", req.Target, err)
		}
		return response{OK: true}

	case opQuery:
		s, ok := n.mgr.Get(req.Target)
		if !ok {
			return errResp("query %q: session not tracked here", req.Target)
		}
		resp := response{OK: true}
		if pos, ok := s.Provider().Last(); ok {
			resp.Pos = &pos
		}
		return resp

	case opExport:
		// Pause → final checkpoint → close is exactly Manager.Evict;
		// the freshest state is then the newest durable record. Detach
		// afterwards releases the journal handle but keeps the files as
		// a rollback backstop until the router's purge acknowledgment.
		if _, ok := n.mgr.Get(req.Target); !ok {
			return errResp("export %q: session not tracked here", req.Target)
		}
		if !n.mgr.Evict(req.Target) {
			return errResp("export %q: evict raced a concurrent removal", req.Target)
		}
		state, err := n.store.Load(req.Target)
		if err != nil {
			return errResp("export %q: load checkpoint: %v", req.Target, err)
		}
		_ = n.store.Detach(req.Target)
		raw, err := json.Marshal(state)
		if err != nil {
			return errResp("export %q: encode state: %v", req.Target, err)
		}
		return response{OK: true, State: raw}

	case opImport:
		var state checkpoint.SessionState
		if err := json.Unmarshal(req.State, &state); err != nil {
			return errResp("import %q: decode state: %v", req.Target, err)
		}
		if state.SessionID != req.Target {
			return errResp("import %q: state belongs to %q", req.Target, state.SessionID)
		}
		if _, err := n.store.Append(state); err != nil {
			return errResp("import %q: append: %v", req.Target, err)
		}
		if _, err := n.mgr.ResumeSession(req.Target); err != nil {
			return errResp("import %q: resume: %v", req.Target, err)
		}
		return response{OK: true}

	case opRevive:
		// Handoff rollback: the import failed after export evicted the
		// session, so resurrect it from this node's own (detached but
		// not purged) files.
		if _, err := n.mgr.ResumeSession(req.Target); err != nil {
			return errResp("revive %q: %v", req.Target, err)
		}
		return response{OK: true}

	case opPurge:
		if err := n.store.Remove(req.Target); err != nil {
			return errResp("purge %q: %v", req.Target, err)
		}
		return response{OK: true}

	case opAdopt:
		adopted, err := n.adopt(req.Dir, req.Targets)
		if err != nil {
			return errResp("adopt from %s: %v", req.Dir, err)
		}
		return response{OK: true, Adopted: adopted}

	default:
		return errResp("unknown op %q", req.Op)
	}
}

// adopt opens a dead peer's checkpoint directory and resurrects the
// given targets into this node. The peer's flock may still be held for
// a moment (its store closing, or a sibling survivor adopting a
// different range), so Open retries on ErrLocked up to AdoptLockWait.
// Targets without usable durable state are skipped — the router tracks
// them fresh instead. Adopted targets' files are removed from the
// peer's directory so a later adopter or a rejoining node cannot
// double-resurrect them.
func (n *Node) adopt(dir string, targets []string) ([]string, error) {
	var peer *checkpoint.Store
	deadline := time.Now().Add(n.lockTry)
	for {
		st, err := checkpoint.Open(dir, checkpoint.Options{})
		if err == nil {
			peer = st
			break
		}
		if !errors.Is(err, checkpoint.ErrLocked) || time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(5 * time.Millisecond)
	}
	defer func() { _ = peer.Close() }()
	var adopted []string
	for _, t := range targets {
		state, err := peer.Load(t)
		if err != nil {
			continue // no durable state: router falls back to a fresh track
		}
		if _, err := n.store.Append(state); err != nil {
			continue
		}
		if _, err := n.mgr.ResumeSession(t); err != nil {
			_ = n.store.Remove(t)
			continue
		}
		_ = peer.Remove(t)
		adopted = append(adopted, t)
	}
	return adopted, nil
}
