// Package cluster is the distributed session tier: the "millions of
// users" scale-out path. A front-door Router consistent-hashes tracked
// targets onto N runtime Nodes, each wrapping its own runtime.Manager
// and checkpoint.Store; sessions move between nodes live, via a
// checkpointed handoff, and survive node death by being resurrected on
// survivors from the dead node's durable store.
//
// The pieces are deliberate re-compositions of subsystems the
// single-process runtime already has:
//
//   - Transport: cluster RPCs are JSON envelopes in remote's versioned
//     control frames (remote.FrameControl), with per-call timeout and
//     capped-backoff retries on every inter-node call.
//   - Health: the Router reuses health.Monitor as a node-level circuit
//     breaker — probe/query error streaks trip a node into quarantine,
//     half-open probes are paced by Monitor.Allow, and recovery closes
//     the breaker. A node Down for longer than Policy.DeathAfter is
//     declared dead and failed over.
//   - Durability: a handoff is pause → Session.Checkpoint (the final
//     checkpoint inside Manager.Evict) → ship checkpoint.SessionState
//     over the wire → Store.Append + Manager.ResumeSession on the
//     receiver → atomic route flip. Failover is the same rehydration
//     driven from disk: survivors adopt the dead node's store
//     directory (its flock died with it) and resume every affected
//     target.
//
// Degradation contract: a position query for a target whose node is
// quarantined, dead, or mid-handoff returns the router's last known
// position marked stale — never an error. Positioning data is
// perishable; a slightly old answer beats an outage.
package cluster

import (
	"errors"
	"net"
	"time"
)

// Errors returned by the cluster tier.
var (
	// ErrUnknownTarget indicates a target the router has never tracked.
	ErrUnknownTarget = errors.New("cluster: unknown target")
	// ErrNoNodes indicates an operation that needs at least one live
	// node on an empty (or fully dead) ring.
	ErrNoNodes = errors.New("cluster: no live nodes")
	// ErrNodeDown indicates an operation on a node that was killed.
	ErrNodeDown = errors.New("cluster: node is down")
	// ErrDuplicateNode indicates joining a node ID that is already a
	// member.
	ErrDuplicateNode = errors.New("cluster: node already joined")
)

// Dialer opens a TCP connection to a node address. Tests substitute
// fault-injecting dialers (chaos.Link) to script partitions and slow
// peers.
type Dialer func(addr string, timeout time.Duration) (net.Conn, error)

func defaultDialer(addr string, timeout time.Duration) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, timeout)
}

// Policy tunes the router. The zero value gives production-ish
// defaults; tests shrink the intervals.
type Policy struct {
	// Replicas is the number of virtual nodes per member on the hash
	// ring (default 64). More replicas smooth the key distribution at
	// the cost of a bigger ring.
	Replicas int
	// ProbeInterval is the health sweep cadence and the half-open probe
	// pacing for quarantined nodes (default 250ms).
	ProbeInterval time.Duration
	// MaxConsecutiveErrors trips a node's breaker (default 3): probe
	// and query transport failures count, successes reset the streak.
	MaxConsecutiveErrors int
	// DeathAfter is how long a node must stay quarantined before the
	// router declares it dead and fails its sessions over to survivors
	// (default 8×ProbeInterval). Short partitions heal inside this
	// grace window without moving any session.
	DeathAfter time.Duration
	// HandoffConcurrency bounds parallel session handoffs during
	// rebalancing (default 4).
	HandoffConcurrency int
	// DialTimeout bounds one connection attempt (default 1s).
	DialTimeout time.Duration
	// CallTimeout bounds one RPC attempt, write to reply (default 2s).
	CallTimeout time.Duration
	// Retries is how many times a transport-failed RPC is retried
	// (default 2); application-level errors are never retried.
	Retries int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt (default 20ms).
	RetryBackoff time.Duration
}

func (p Policy) withDefaults() Policy {
	if p.Replicas <= 0 {
		p.Replicas = 64
	}
	if p.ProbeInterval <= 0 {
		p.ProbeInterval = 250 * time.Millisecond
	}
	if p.MaxConsecutiveErrors <= 0 {
		p.MaxConsecutiveErrors = 3
	}
	if p.DeathAfter <= 0 {
		p.DeathAfter = 8 * p.ProbeInterval
	}
	if p.HandoffConcurrency <= 0 {
		p.HandoffConcurrency = 4
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = time.Second
	}
	if p.CallTimeout <= 0 {
		p.CallTimeout = 2 * time.Second
	}
	if p.Retries < 0 {
		p.Retries = 0
	} else if p.Retries == 0 {
		p.Retries = 2
	}
	if p.RetryBackoff <= 0 {
		p.RetryBackoff = 20 * time.Millisecond
	}
	return p
}
