package cluster

import (
	"fmt"
	"testing"
)

// BenchmarkClusterHandoff measures one full handoff round trip —
// export (pause, checkpoint, detach), wire transfer, import (append,
// resume), route flip, purge — by ping-ponging a live Kalman session
// between two nodes.
func BenchmarkClusterHandoff(b *testing.B) {
	n1 := startTestNode(b, "n1", 4)
	n2 := startTestNode(b, "n2", 4)
	nodes := map[string]*Node{"n1": n1, "n2": n2}
	r := NewRouter(RouterConfig{Policy: fastPolicy()})
	defer r.Close()
	for _, n := range nodes {
		if err := r.Join(n.Info()); err != nil {
			b.Fatal(err)
		}
	}
	const target = "bench-tag"
	if err := r.Track(target); err != nil {
		b.Fatal(err)
	}
	cur, _, _ := r.NodeOf(target)
	if err := nodes[cur].Pump(10); err != nil { // warm filter + durable state
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := "n1"
		if cur == "n1" {
			next = "n2"
		}
		if err := r.Move(target, next); err != nil {
			b.Fatal(err)
		}
		cur = next
	}
}

// BenchmarkClusterSessions measures one pump round of a 3-node cluster
// tracking 60 Kalman sessions — the steady-state cost of the session
// tier per cluster-wide tick.
func BenchmarkClusterSessions(b *testing.B) {
	ids := []string{"n1", "n2", "n3"}
	nodes := make([]*Node, 0, len(ids))
	r := NewRouter(RouterConfig{Policy: fastPolicy()})
	defer r.Close()
	for _, id := range ids {
		n := startTestNode(b, id, 4)
		nodes = append(nodes, n)
		if err := r.Join(n.Info()); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < 60; i++ {
		if err := r.Track(fmt.Sprintf("tag-%02d", i)); err != nil {
			b.Fatal(err)
		}
	}
	for _, n := range nodes {
		if err := n.Pump(2); err != nil {
			b.Fatal(err)
		}
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range nodes {
			if err := n.Pump(1); err != nil {
				b.Fatal(err)
			}
		}
	}
}
