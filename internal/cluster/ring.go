package cluster

import (
	"fmt"
	"sort"
)

// ring is a consistent-hash ring with virtual nodes. Each member
// contributes Replicas points; a key is owned by the first point
// clockwise from its hash. The property the rebalancer leans on: adding
// a member moves keys only TO the new member, and removing one moves
// only ITS keys — the minimal ranges, nothing else shuffles.
//
// Not safe for concurrent use; the Router guards it with its own lock.
type ring struct {
	replicas int
	points   []ringPoint // sorted by hash
	members  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

func newRing(replicas int) *ring {
	return &ring{replicas: replicas, members: make(map[string]bool)}
}

// add inserts a member's virtual nodes. Idempotent.
func (r *ring) add(node string) {
	if r.members[node] {
		return
	}
	r.members[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// remove deletes a member's virtual nodes. Idempotent.
func (r *ring) remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// owner returns the member owning a key, or false on an empty ring.
func (r *ring) owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].node, true
}

// hash64 is FNV-1a with a murmur-style avalanche finalizer, inlined to
// keep ring lookups allocation-free. The finalizer matters: raw FNV-1a
// barely diffuses trailing-character differences, so sequential IDs
// ("tag-001", "tag-002", …) cluster into a handful of ring gaps and
// land on one member.
func hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
