package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"perpos/internal/core"
	"perpos/internal/health"
	"perpos/internal/obs"
	"perpos/internal/positioning"
)

// NodeInfo describes one member to the router: identity, RPC address,
// and the checkpoint directory survivors adopt if the node dies.
type NodeInfo struct {
	ID   string
	Addr string
	Dir  string
}

// RouterConfig configures a Router.
type RouterConfig struct {
	Policy Policy
	// Metrics, when set, receives handoff/failover counters and
	// per-node gauges.
	Metrics *obs.Metrics
	// Dialer substitutes the TCP dialer (chaos fault injection).
	Dialer Dialer
	// Logf, when set, receives one line per membership/handoff/failover
	// event — the demo transcript.
	Logf func(format string, args ...any)
}

// member is the router's record of one node.
type member struct {
	info NodeInfo
	cli  *rpcClient
	// dead is set when the node is declared dead (quarantine outlived
	// DeathAfter); its ring range is gone and its sessions are being
	// failed over.
	dead bool
}

// route is the router's record of one tracked target.
type route struct {
	node string
	// inFlight marks a handoff or failover in progress: queries serve
	// the cached position until the route flips.
	inFlight bool
	// last/hasLast cache the most recent successfully queried position
	// — the degradation answer while the owner is unreachable.
	last    positioning.Position
	hasLast bool
}

// Router is the cluster front door: it owns the consistent-hash ring,
// per-node breakers, the target→node routing table and the last-known
// position cache, and it drives handoffs, failover and rebalancing.
// All methods are safe for concurrent use.
type Router struct {
	pol     Policy
	hub     *obs.Metrics
	dialer  Dialer
	logf    func(string, ...any)
	monitor *health.Monitor

	// opMu serializes topology operations — join/leave rebalancing,
	// failover, explicit moves — so at most one redistribution mutates
	// routes at a time. Queries and tracking never take it.
	opMu sync.Mutex

	mu      sync.Mutex
	ring    *ring
	members map[string]*member
	routes  map[string]*route

	stop    chan struct{}
	started bool
	stopped bool
	wg      sync.WaitGroup
}

// NewRouter returns a router with no members. Call Start to run the
// health sweep; Join nodes before or after.
func NewRouter(cfg RouterConfig) *Router {
	pol := cfg.Policy.withDefaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Router{
		pol:    pol,
		hub:    cfg.Metrics,
		dialer: cfg.Dialer,
		logf:   logf,
		monitor: health.NewMonitor(health.Policy{
			MaxConsecutiveErrors: pol.MaxConsecutiveErrors,
			ProbeInterval:        pol.ProbeInterval,
			RecoveryEmissions:    1,
			Sweep:                pol.ProbeInterval,
		}),
		ring:    newRing(pol.Replicas),
		members: make(map[string]*member),
		routes:  make(map[string]*route),
		stop:    make(chan struct{}),
	}
}

// Monitor exposes the node-level breaker state (tests, inspection).
func (r *Router) Monitor() *health.Monitor { return r.monitor }

// Start launches the health sweep loop: probe every member, advance
// the breakers, fail over members dead past the grace window.
func (r *Router) Start() {
	r.mu.Lock()
	if r.started || r.stopped {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		ticker := time.NewTicker(r.pol.ProbeInterval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				r.sweep(time.Now())
			}
		}
	}()
}

// Close stops the sweep loop and drops every node connection. Nodes
// themselves are closed by their owners.
func (r *Router) Close() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	close(r.stop)
	clients := make([]*rpcClient, 0, len(r.members))
	for _, m := range r.members {
		clients = append(clients, m.cli)
	}
	r.mu.Unlock()
	r.wg.Wait()
	for _, c := range clients {
		c.close()
	}
}

// Join adds a member and rebalances: targets whose ring owner becomes
// the new node — and only those, the consistent-hashing guarantee —
// are handed off from their current homes with bounded concurrency.
// Join returns after the rebalance settles; targets whose handoff
// failed stay (revived) on their old node.
func (r *Router) Join(info NodeInfo) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()

	r.mu.Lock()
	if _, ok := r.members[info.ID]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrDuplicateNode, info.ID)
	}
	m := &member{info: info, cli: newRPCClient(info.ID, info.Addr, r.pol, r.dialer)}
	r.members[info.ID] = m
	r.ring.add(info.ID)
	// Collect the minimal range: live-routed targets the ring now
	// assigns to the newcomer.
	type move struct {
		target string
		from   *member
	}
	var moves []move
	for target, rt := range r.routes {
		if rt.inFlight || rt.node == info.ID {
			continue
		}
		owner, ok := r.ring.owner(target)
		if !ok || owner != info.ID {
			continue
		}
		from := r.members[rt.node]
		if from == nil || from.dead {
			continue
		}
		moves = append(moves, move{target: target, from: from})
	}
	r.mu.Unlock()

	r.monitor.Watch(info.ID)
	r.setNodeUp(info.ID, true)
	r.logf("cluster: node %s joined (%s), rebalancing %d targets", info.ID, info.Addr, len(moves))

	if len(moves) == 0 {
		return nil
	}
	sem := make(chan struct{}, r.pol.HandoffConcurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	moved := 0
	for _, mv := range moves {
		wg.Add(1)
		sem <- struct{}{}
		go func(mv move) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := r.handoff(mv.target, mv.from, m); err != nil {
				r.logf("cluster: rebalance %s %s→%s failed: %v", mv.target, mv.from.info.ID, info.ID, err)
				return
			}
			if r.hub != nil {
				r.hub.ClusterRebalanced.Inc()
			}
			mu.Lock()
			moved++
			mu.Unlock()
		}(mv)
	}
	wg.Wait()
	r.logf("cluster: rebalance to %s done: %d/%d targets moved", info.ID, moved, len(moves))
	return nil
}

// Leave drains a member gracefully: every target it owns is handed off
// to its post-removal ring owner, then the member is dropped.
func (r *Router) Leave(id string) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()

	r.mu.Lock()
	m, ok := r.members[id]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", id)
	}
	r.ring.remove(id)
	type move struct {
		target string
		to     *member
	}
	var moves []move
	for target, rt := range r.routes {
		if rt.node != id {
			continue
		}
		owner, ok := r.ring.owner(target)
		if !ok {
			r.ring.add(id) // restore: nowhere to drain to
			r.mu.Unlock()
			return ErrNoNodes
		}
		to := r.members[owner]
		if to == nil || to.dead {
			continue
		}
		moves = append(moves, move{target: target, to: to})
	}
	r.mu.Unlock()

	r.logf("cluster: node %s leaving, draining %d targets", id, len(moves))
	sem := make(chan struct{}, r.pol.HandoffConcurrency)
	var wg sync.WaitGroup
	for _, mv := range moves {
		wg.Add(1)
		sem <- struct{}{}
		go func(mv move) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := r.handoff(mv.target, m, mv.to); err != nil {
				r.logf("cluster: drain %s %s→%s failed: %v", mv.target, id, mv.to.info.ID, err)
			}
		}(mv)
	}
	wg.Wait()

	r.mu.Lock()
	remaining := 0
	for _, rt := range r.routes {
		if rt.node == id {
			remaining++
		}
	}
	if remaining > 0 {
		// Failed drains keep the member (and its ring range) so the
		// stragglers stay reachable; the caller can retry Leave.
		r.ring.add(id)
		r.mu.Unlock()
		return fmt.Errorf("cluster: node %s still owns %d targets after drain", id, remaining)
	}
	delete(r.members, id)
	r.mu.Unlock()
	m.cli.close()
	r.setNodeUp(id, false)
	r.logf("cluster: node %s left", id)
	return nil
}

// Track starts tracking a target: the ring picks its home node and the
// node instantiates its session.
func (r *Router) Track(target string) error {
	r.mu.Lock()
	if _, ok := r.routes[target]; ok {
		r.mu.Unlock()
		return nil
	}
	owner, ok := r.ring.owner(target)
	if !ok {
		r.mu.Unlock()
		return ErrNoNodes
	}
	m := r.members[owner]
	if m == nil || m.dead {
		r.mu.Unlock()
		return ErrNoNodes
	}
	r.mu.Unlock()

	if _, err := m.cli.call(request{Op: opTrack, Target: target}); err != nil {
		r.noteResult(owner, err)
		return err
	}
	r.noteResult(owner, nil)

	r.mu.Lock()
	if _, ok := r.routes[target]; !ok {
		r.routes[target] = &route{node: owner}
		r.bumpNodeSessions(owner, +1)
	}
	r.mu.Unlock()
	return nil
}

// PositionResult is one Position answer.
type PositionResult struct {
	// Pos is the position; Pos.Time.IsZero() (with HasFix false) means
	// the target has produced no fix yet.
	Pos positioning.Position
	// HasFix reports whether Pos is meaningful.
	HasFix bool
	// Stale marks a degraded answer served from the router's cache
	// while the owner was quarantined, dead or mid-handoff.
	Stale bool
	// Node is the target's current home.
	Node string
}

// Position answers a position query. The degradation contract: if the
// owning node is quarantined, dead, or the target is mid-handoff, the
// last known position is returned marked Stale — never an error. An
// error means only that the target itself is unknown.
func (r *Router) Position(target string) (PositionResult, error) {
	r.mu.Lock()
	rt, ok := r.routes[target]
	if !ok {
		r.mu.Unlock()
		return PositionResult{}, fmt.Errorf("%w: %s", ErrUnknownTarget, target)
	}
	node := rt.node
	m := r.members[node]
	degraded := rt.inFlight || m == nil || m.dead
	cached := PositionResult{Pos: rt.last, HasFix: rt.hasLast, Stale: true, Node: node}
	var cli *rpcClient
	if m != nil {
		cli = m.cli
	}
	r.mu.Unlock()

	if !degraded {
		if h, ok := r.monitor.Health(node); ok && h.State == health.StateDown {
			degraded = true
		}
	}
	if degraded || cli == nil {
		r.noteStale()
		return cached, nil
	}

	resp, err := cli.call(request{Op: opQuery, Target: target})
	if err != nil {
		// Transport failures feed the breaker (the error streak is how
		// a dying node trips between probes); either way the answer is
		// the cache, not the error.
		if _, ok := err.(*RemoteError); !ok {
			r.noteResult(node, err)
		}
		r.noteStale()
		return cached, nil
	}
	r.noteResult(node, nil)
	if resp.Pos == nil {
		return PositionResult{Node: node}, nil // tracked, no fix yet
	}
	r.mu.Lock()
	if cur, ok := r.routes[target]; ok {
		cur.last = *resp.Pos
		cur.hasLast = true
	}
	r.mu.Unlock()
	return PositionResult{Pos: *resp.Pos, HasFix: true, Node: node}, nil
}

// Move hands one target off to an explicit destination node — the
// operator seam rebalancing and benchmarks use.
func (r *Router) Move(target, to string) error {
	r.opMu.Lock()
	defer r.opMu.Unlock()
	r.mu.Lock()
	rt, ok := r.routes[target]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownTarget, target)
	}
	from := r.members[rt.node]
	dest := r.members[to]
	r.mu.Unlock()
	if from == nil || dest == nil || dest.dead {
		return ErrNoNodes
	}
	if from == dest {
		return nil
	}
	return r.handoff(target, from, dest)
}

// handoff moves one live session from one node to another:
//
//	mark in-flight → export (pause+checkpoint+ship) → import
//	(append+resume) → flip route → purge source files
//
// On import failure the session is revived on the source from its
// still-present files and the route never flips, so the target stays
// served either way.
func (r *Router) handoff(target string, from, to *member) error {
	start := time.Now()
	r.mu.Lock()
	rt, ok := r.routes[target]
	if !ok || rt.node != from.info.ID {
		r.mu.Unlock()
		return fmt.Errorf("%w: %s (not on %s)", ErrUnknownTarget, target, from.info.ID)
	}
	if rt.inFlight {
		r.mu.Unlock()
		return fmt.Errorf("cluster: %s already mid-handoff", target)
	}
	rt.inFlight = true
	r.mu.Unlock()

	fail := func(err error) error {
		r.mu.Lock()
		rt.inFlight = false
		r.mu.Unlock()
		if r.hub != nil {
			r.hub.ClusterHandoffFailed.Inc()
		}
		return err
	}

	exp, err := from.cli.call(request{Op: opExport, Target: target})
	if err != nil {
		r.noteTransport(from.info.ID, err)
		return fail(fmt.Errorf("export %s from %s: %w", target, from.info.ID, err))
	}
	if _, err := to.cli.call(request{Op: opImport, Target: target, State: exp.State}); err != nil {
		r.noteTransport(to.info.ID, err)
		// Roll back: the source still has the files (export detached,
		// nothing purged), so revive the session where it was.
		if _, rerr := from.cli.call(request{Op: opRevive, Target: target}); rerr != nil {
			r.logf("cluster: revive %s on %s after failed import: %v", target, from.info.ID, rerr)
		}
		return fail(fmt.Errorf("import %s into %s: %w", target, to.info.ID, err))
	}
	// The receiver owns the session; acknowledge by purging the
	// source's files. Best-effort: leftover files are harmless (a
	// future adopt skips flipped routes; import seq supersedes).
	if _, err := from.cli.call(request{Op: opPurge, Target: target}); err != nil {
		r.logf("cluster: purge %s on %s: %v", target, from.info.ID, err)
	}

	r.mu.Lock()
	rt.node = to.info.ID
	rt.inFlight = false
	r.mu.Unlock()
	r.bumpNodeSessions(from.info.ID, -1)
	r.bumpNodeSessions(to.info.ID, +1)
	if r.hub != nil {
		r.hub.ClusterHandoffs.Inc()
		r.hub.ClusterHandoffNs.ObserveDuration(time.Since(start))
	}
	r.logf("cluster: handoff %s %s→%s (%v)", target, from.info.ID, to.info.ID, time.Since(start).Round(time.Microsecond))
	return nil
}

// sweep is one health-loop tick: probe members, advance breakers,
// declare and fail over the dead.
func (r *Router) sweep(now time.Time) {
	r.mu.Lock()
	type probeTarget struct {
		id  string
		cli *rpcClient
	}
	probes := make([]probeTarget, 0, len(r.members))
	for id, m := range r.members {
		if !m.dead {
			probes = append(probes, probeTarget{id: id, cli: m.cli})
		}
	}
	r.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].id < probes[j].id })

	for _, p := range probes {
		if h, ok := r.monitor.Health(p.id); ok && h.State == health.StateDown {
			if !r.monitor.Allow(p.id) {
				continue // paced half-open probing
			}
		}
		_, err := p.cli.call(request{Op: opProbe})
		r.noteResult(p.id, err)
	}

	for _, ev := range r.monitor.Advance(now) {
		r.setNodeUp(ev.Node, ev.Up)
		if ev.Up {
			r.logf("cluster: node %s recovered (%s)", ev.Node, ev.Reason)
		} else {
			r.logf("cluster: node %s quarantined (%s): %v", ev.Node, ev.Reason, ev.Err)
		}
	}

	// Death sentence: quarantined past the grace window, or already
	// declared dead with routes left over from a failed adoption.
	r.mu.Lock()
	var dead []string
	for id, m := range r.members {
		if m.dead {
			for _, rt := range r.routes {
				if rt.node == id && !rt.inFlight {
					dead = append(dead, id)
					break
				}
			}
			continue
		}
		if h, ok := r.monitor.Health(id); ok && h.State == health.StateDown &&
			!h.DownSince.IsZero() && now.Sub(h.DownSince) >= r.pol.DeathAfter {
			dead = append(dead, id)
		}
	}
	r.mu.Unlock()
	sort.Strings(dead)
	for _, id := range dead {
		r.failover(id)
	}
}

// failover declares a node dead, removes its hash range, and
// resurrects its sessions on survivors from its checkpoint directory.
// Idempotent: a transport failure leaves the remaining targets routed
// to the dead member and the next sweep retries.
func (r *Router) failover(id string) {
	r.opMu.Lock()
	defer r.opMu.Unlock()

	r.mu.Lock()
	m, ok := r.members[id]
	if !ok {
		r.mu.Unlock()
		return
	}
	first := !m.dead
	m.dead = true
	r.ring.remove(id)
	// Group the dead node's targets by their new ring owner.
	groups := make(map[string][]string)
	for target, rt := range r.routes {
		if rt.node != id || rt.inFlight {
			continue
		}
		owner, ok := r.ring.owner(target)
		if !ok {
			continue // no survivors; targets stay cached-only
		}
		if sm := r.members[owner]; sm == nil || sm.dead {
			continue
		}
		rt.inFlight = true
		groups[owner] = append(groups[owner], target)
	}
	dir := m.info.Dir
	total := 0
	for _, ts := range groups {
		total += len(ts)
	}
	r.mu.Unlock()

	if first {
		if r.hub != nil {
			r.hub.ClusterFailovers.Inc()
		}
		r.setNodeUp(id, false)
		r.logf("cluster: node %s declared dead, failing over %d targets", id, total)
	}
	if total == 0 {
		return
	}

	owners := make([]string, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Strings(owners)
	// Adoptions run sequentially per survivor: each opens the dead
	// node's directory exclusively (flock), so parallelism would only
	// contend on the lock.
	for _, owner := range owners {
		targets := groups[owner]
		sort.Strings(targets)
		sm := r.memberByID(owner)
		if sm == nil {
			r.unmarkInFlight(targets)
			continue
		}
		resp, err := sm.cli.call(request{Op: opAdopt, Dir: dir, Targets: targets})
		if err != nil {
			r.noteTransport(owner, err)
			r.logf("cluster: adopt on %s failed: %v", owner, err)
			r.unmarkInFlight(targets) // next sweep retries
			continue
		}
		adopted := make(map[string]bool, len(resp.Adopted))
		for _, t := range resp.Adopted {
			adopted[t] = true
		}
		for _, t := range targets {
			if !adopted[t] {
				// No durable state survived (never checkpointed): track
				// fresh on the survivor rather than losing the target.
				if _, err := sm.cli.call(request{Op: opTrack, Target: t}); err != nil {
					r.logf("cluster: re-track %s on %s failed: %v", t, owner, err)
					r.unmarkInFlight([]string{t})
					continue
				}
				r.logf("cluster: %s restarted cold on %s (no durable state)", t, owner)
			}
		}
		r.mu.Lock()
		flipped := 0
		for _, t := range targets {
			rt := r.routes[t]
			if rt == nil || !rt.inFlight {
				continue
			}
			rt.node = owner
			rt.inFlight = false
			flipped++
		}
		r.mu.Unlock()
		r.bumpNodeSessions(id, -flipped)
		r.bumpNodeSessions(owner, flipped)
		if r.hub != nil {
			r.hub.ClusterResurrected.Add(uint64(len(resp.Adopted)))
		}
		r.logf("cluster: %d sessions resurrected on %s (%d adopted, %d cold)", flipped, owner, len(resp.Adopted), flipped-len(resp.Adopted))
	}
}

// unmarkInFlight clears the in-flight flag on targets whose move
// failed, leaving them routed to their previous node.
func (r *Router) unmarkInFlight(targets []string) {
	r.mu.Lock()
	for _, t := range targets {
		if rt := r.routes[t]; rt != nil {
			rt.inFlight = false
		}
	}
	r.mu.Unlock()
}

func (r *Router) memberByID(id string) *member {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.members[id]
}

// noteResult feeds probe/query outcomes into the node breaker: a
// success both clears the error streak and counts as the recovery
// emission a Down node needs to close its breaker.
func (r *Router) noteResult(node string, err error) {
	if _, ok := err.(*RemoteError); ok {
		err = nil // the node answered; application errors are not node failures
	}
	r.monitor.NodeResult(node, err)
	if err == nil {
		r.monitor.Tap(node, core.Sample{})
	}
}

// noteTransport feeds a transport failure into the breaker without
// crediting RemoteErrors.
func (r *Router) noteTransport(node string, err error) {
	if _, ok := err.(*RemoteError); ok {
		return
	}
	r.monitor.NodeResult(node, err)
}

func (r *Router) noteStale() {
	if r.hub != nil {
		r.hub.ClusterStaleServed.Inc()
	}
}

func (r *Router) setNodeUp(node string, up bool) {
	if r.hub == nil {
		return
	}
	v := int64(0)
	if up {
		v = 1
	}
	r.hub.ClusterNodeUp(node).Set(v)
}

func (r *Router) bumpNodeSessions(node string, delta int) {
	if r.hub == nil || delta == 0 {
		return
	}
	r.hub.ClusterNodeSessions(node).Add(int64(delta))
}

// Targets returns every tracked target, sorted.
func (r *Router) Targets() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.routes))
	for t := range r.routes {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// NodeOf returns a target's current home and whether a handoff or
// failover is in flight for it.
func (r *Router) NodeOf(target string) (node string, inFlight bool, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rt, ok := r.routes[target]
	if !ok {
		return "", false, false
	}
	return rt.node, rt.inFlight, true
}

// InFlight counts targets currently mid-handoff.
func (r *Router) InFlight() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, rt := range r.routes {
		if rt.inFlight {
			n++
		}
	}
	return n
}

// MemberStatus is one row of the router's membership view.
type MemberStatus struct {
	ID       string
	Addr     string
	Dead     bool
	Down     bool
	Sessions int // targets routed to the node
}

// Members returns the membership view, sorted by ID.
func (r *Router) Members() []MemberStatus {
	r.mu.Lock()
	counts := make(map[string]int)
	for _, rt := range r.routes {
		counts[rt.node]++
	}
	out := make([]MemberStatus, 0, len(r.members))
	for id, m := range r.members {
		out = append(out, MemberStatus{ID: id, Addr: m.info.Addr, Dead: m.dead, Sessions: counts[id]})
	}
	r.mu.Unlock()
	for i := range out {
		if h, ok := r.monitor.Health(out[i].ID); ok {
			out[i].Down = h.State == health.StateDown
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
