package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// aarhus is the reference campus location used across the test suite
// (the paper's group is at Aarhus University).
var aarhus = Point{Lat: 56.1629, Lon: 10.2039}

func TestPointValid(t *testing.T) {
	tests := []struct {
		name string
		p    Point
		want bool
	}{
		{"origin", Point{}, true},
		{"aarhus", aarhus, true},
		{"north pole", Point{Lat: 90, Lon: 0}, true},
		{"date line", Point{Lat: 0, Lon: 180}, true},
		{"lat too big", Point{Lat: 90.01, Lon: 0}, false},
		{"lat too small", Point{Lat: -90.01, Lon: 0}, false},
		{"lon too big", Point{Lat: 0, Lon: 180.5}, false},
		{"lon too small", Point{Lat: 0, Lon: -181}, false},
		{"nan lat", Point{Lat: math.NaN(), Lon: 0}, false},
		{"nan lon", Point{Lat: 0, Lon: math.NaN()}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Valid(); got != tt.want {
				t.Errorf("Valid(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	tests := []struct {
		name   string
		a, b   Point
		wantM  float64
		within float64 // relative tolerance
	}{
		{
			name:   "zero distance",
			a:      aarhus,
			b:      aarhus,
			wantM:  0,
			within: 0,
		},
		{
			name: "aarhus to copenhagen",
			a:    aarhus,
			b:    Point{Lat: 55.6761, Lon: 12.5683},
			// Reference value from geodesic computation.
			wantM:  157_000,
			within: 0.01,
		},
		{
			name:   "one degree latitude at equator",
			a:      Point{Lat: 0, Lon: 0},
			b:      Point{Lat: 1, Lon: 0},
			wantM:  111_195,
			within: 0.005,
		},
		{
			name:   "short hop ten metres",
			a:      aarhus,
			b:      aarhus.Offset(10, 45),
			wantM:  10,
			within: 0.001,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.a.DistanceTo(tt.b)
			if tt.wantM == 0 {
				if got != 0 {
					t.Fatalf("DistanceTo = %v, want 0", got)
				}
				return
			}
			if rel := math.Abs(got-tt.wantM) / tt.wantM; rel > tt.within {
				t.Errorf("DistanceTo = %.1f m, want %.1f m (rel err %.4f > %.4f)",
					got, tt.wantM, rel, tt.within)
			}
		})
	}
}

func TestDistanceSymmetric(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: clamp(lat1, -89, 89), Lon: clamp(lon1, -179, 179)}
		b := Point{Lat: clamp(lat2, -89, 89), Lon: clamp(lon2, -179, 179)}
		d1 := a.DistanceTo(b)
		d2 := b.DistanceTo(a)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := Point{Lat: clamp(lat1, -89, 89), Lon: clamp(lon1, -179, 179)}
		b := Point{Lat: clamp(lat2, -89, 89), Lon: clamp(lon2, -179, 179)}
		c := Point{Lat: clamp(lat3, -89, 89), Lon: clamp(lon3, -179, 179)}
		// Allow a tiny absolute slack for floating error.
		return a.DistanceTo(c) <= a.DistanceTo(b)+b.DistanceTo(c)+1e-6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestOffsetRoundTrip(t *testing.T) {
	// Travelling d metres at bearing b must land d metres away at
	// bearing ~b for moderate distances.
	cfg := &quick.Config{MaxCount: 300}
	f := func(dRaw, bRaw float64) bool {
		d := 1 + math.Mod(math.Abs(dRaw), 5000) // 1 m .. 5 km
		brg := math.Mod(math.Abs(bRaw), 360)
		q := aarhus.Offset(d, brg)
		gotD := aarhus.DistanceTo(q)
		if math.Abs(gotD-d)/d > 1e-3 {
			return false
		}
		gotB := aarhus.BearingTo(q)
		diff := math.Abs(gotB - brg)
		if diff > 180 {
			diff = 360 - diff
		}
		return diff < 0.5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	tests := []struct {
		name    string
		bearing float64
	}{
		{"north", 0},
		{"east", 90},
		{"south", 180},
		{"west", 270},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := aarhus.Offset(100, tt.bearing)
			got := aarhus.BearingTo(q)
			diff := math.Abs(got - tt.bearing)
			if diff > 180 {
				diff = 360 - diff
			}
			if diff > 0.1 {
				t.Errorf("BearingTo = %.3f, want %.1f", got, tt.bearing)
			}
		})
	}
}

func TestProjectionRoundTrip(t *testing.T) {
	pr := NewProjection(aarhus)
	cfg := &quick.Config{MaxCount: 300}
	f := func(eRaw, nRaw float64) bool {
		e := ENU{
			East:  math.Mod(eRaw, 2000),
			North: math.Mod(nRaw, 2000),
		}
		back := pr.ToLocal(pr.ToGlobal(e))
		return math.Abs(back.East-e.East) < 0.01 && math.Abs(back.North-e.North) < 0.01
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestProjectionDistancesAgree(t *testing.T) {
	// Planar ENU distance must agree with great-circle distance at
	// building scale.
	pr := NewProjection(aarhus)
	a := pr.ToGlobal(ENU{East: 10, North: 20})
	b := pr.ToGlobal(ENU{East: 110, North: -30})

	planar := pr.ToLocal(a).Distance(pr.ToLocal(b))
	sphere := a.DistanceTo(b)
	if math.Abs(planar-sphere) > 0.05 {
		t.Errorf("planar %.3f vs sphere %.3f differ by > 5 cm", planar, sphere)
	}
}

func TestProjectionOrigin(t *testing.T) {
	pr := NewProjection(aarhus)
	if got := pr.Origin(); got != aarhus {
		t.Errorf("Origin() = %v, want %v", got, aarhus)
	}
	e := pr.ToLocal(aarhus)
	if e.East != 0 || e.North != 0 {
		t.Errorf("ToLocal(origin) = %v, want zero", e)
	}
}

func TestBounds(t *testing.T) {
	a := Point{Lat: 56.0, Lon: 10.0}
	b := Point{Lat: 56.2, Lon: 10.3}
	c := Point{Lat: 56.1, Lon: 10.1}

	bb := NewBounds(a, b)
	if !bb.Contains(c) {
		t.Errorf("bounds %+v should contain %v", bb, c)
	}
	if bb.Contains(Point{Lat: 55.9, Lon: 10.1}) {
		t.Error("bounds should not contain point south of box")
	}
	if bb.Contains(Point{Lat: 56.1, Lon: 10.4}) {
		t.Error("bounds should not contain point east of box")
	}

	center := bb.Center()
	if math.Abs(center.Lat-56.1) > 1e-9 || math.Abs(center.Lon-10.15) > 1e-9 {
		t.Errorf("Center() = %v", center)
	}
}

func TestBoundsEmpty(t *testing.T) {
	bb := NewBounds()
	if bb != (Bounds{}) {
		t.Errorf("NewBounds() = %+v, want zero", bb)
	}
}

func TestBoundsExtend(t *testing.T) {
	bb := NewBounds(aarhus)
	p := aarhus.Offset(500, 30)
	bb = bb.Extend(p)
	if !bb.Contains(p) || !bb.Contains(aarhus) {
		t.Errorf("extended bounds %+v must contain both anchor points", bb)
	}
}

func TestNormalizeLon(t *testing.T) {
	tests := []struct {
		in, want float64
	}{
		{0, 0},
		{180, 180},
		{181, -179},
		{-181, 179},
		{540, 180},
		{-540, -180}, // -180 and 180 are the same meridian; both are in range
	}
	for _, tt := range tests {
		if got := normalizeLon(tt.in); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("normalizeLon(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestENUString(t *testing.T) {
	e := ENU{East: 1.234, North: -5.678}
	if got := e.String(); got != "[1.23E -5.68N]" {
		t.Errorf("String() = %q", got)
	}
}

func TestPointString(t *testing.T) {
	if got := aarhus.String(); got != "(56.162900, 10.203900)" {
		t.Errorf("String() = %q", got)
	}
}

func clamp(v, lo, hi float64) float64 {
	if math.IsNaN(v) {
		return lo
	}
	return math.Mod(math.Abs(v), hi-lo) + lo
}
