// Package geo provides the geodetic primitives used throughout PerPos:
// WGS84 points, great-circle distance and bearing, and a local
// east-north-up (ENU) tangent-plane projection used by the indoor
// subsystems that work in building-local coordinates.
//
// All angles at the API boundary are degrees; all distances are metres.
package geo

import (
	"fmt"
	"math"
)

// EarthRadius is the mean earth radius in metres used for
// great-circle computations.
const EarthRadius = 6371008.8

// Point is a WGS84 coordinate. Alt is metres above the ellipsoid and may
// be zero for 2D fixes.
type Point struct {
	Lat float64 `json:"lat"`
	Lon float64 `json:"lon"`
	Alt float64 `json:"alt,omitempty"`
}

// Valid reports whether p lies within the WGS84 domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String renders the point in a compact human-readable form.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lat, p.Lon)
}

// DistanceTo returns the great-circle distance in metres between p and q
// using the haversine formula, which is accurate to ~0.5% (sufficient for
// positioning-middleware error budgets, which are metres-scale).
func (p Point) DistanceTo(q Point) float64 {
	lat1 := radians(p.Lat)
	lat2 := radians(q.Lat)
	dLat := radians(q.Lat - p.Lat)
	dLon := radians(q.Lon - p.Lon)

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	a := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	return 2 * EarthRadius * math.Asin(math.Min(1, math.Sqrt(a)))
}

// BearingTo returns the initial great-circle bearing from p to q in
// degrees clockwise from true north, normalized to [0, 360).
func (p Point) BearingTo(q Point) float64 {
	lat1 := radians(p.Lat)
	lat2 := radians(q.Lat)
	dLon := radians(q.Lon - p.Lon)

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := degrees(math.Atan2(y, x))
	return math.Mod(deg+360, 360)
}

// Offset returns the point reached by travelling distance metres from p
// along the given bearing (degrees clockwise from north).
func (p Point) Offset(distance, bearing float64) Point {
	lat1 := radians(p.Lat)
	lon1 := radians(p.Lon)
	brg := radians(bearing)
	d := distance / EarthRadius

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) + math.Cos(lat1)*math.Sin(d)*math.Cos(brg))
	lon2 := lon1 + math.Atan2(
		math.Sin(brg)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2),
	)
	return Point{
		Lat: degrees(lat2),
		Lon: normalizeLon(degrees(lon2)),
		Alt: p.Alt,
	}
}

// ENU is a point in a local east-north-up tangent plane, in metres.
type ENU struct {
	East  float64 `json:"east"`
	North float64 `json:"north"`
	Up    float64 `json:"up,omitempty"`
}

// Distance returns the planar distance in metres between two ENU points,
// ignoring the up component (indoor positioning is per-floor).
func (e ENU) Distance(o ENU) float64 {
	return math.Hypot(e.East-o.East, e.North-o.North)
}

// String renders the local point in metres.
func (e ENU) String() string {
	return fmt.Sprintf("[%.2fE %.2fN]", e.East, e.North)
}

// Projection is a local tangent-plane projection anchored at an origin.
// It converts between WGS84 and building-local metric coordinates using
// the equirectangular approximation, which is accurate to centimetres at
// building scale (< a few km from the origin).
type Projection struct {
	origin    Point
	cosLat    float64
	mPerDeg   float64 // metres per degree latitude
	mPerDegLo float64 // metres per degree longitude at origin latitude
}

// NewProjection returns a projection anchored at origin.
func NewProjection(origin Point) *Projection {
	cosLat := math.Cos(radians(origin.Lat))
	mPerDeg := 2 * math.Pi * EarthRadius / 360
	return &Projection{
		origin:    origin,
		cosLat:    cosLat,
		mPerDeg:   mPerDeg,
		mPerDegLo: mPerDeg * cosLat,
	}
}

// Origin returns the projection anchor.
func (pr *Projection) Origin() Point { return pr.origin }

// ToLocal converts a WGS84 point to local ENU metres.
func (pr *Projection) ToLocal(p Point) ENU {
	return ENU{
		East:  (p.Lon - pr.origin.Lon) * pr.mPerDegLo,
		North: (p.Lat - pr.origin.Lat) * pr.mPerDeg,
		Up:    p.Alt - pr.origin.Alt,
	}
}

// ToGlobal converts local ENU metres back to WGS84.
func (pr *Projection) ToGlobal(e ENU) Point {
	return Point{
		Lat: pr.origin.Lat + e.North/pr.mPerDeg,
		Lon: pr.origin.Lon + e.East/pr.mPerDegLo,
		Alt: pr.origin.Alt + e.Up,
	}
}

// Bounds is an axis-aligned WGS84 bounding box.
type Bounds struct {
	MinLat, MinLon, MaxLat, MaxLon float64
}

// NewBounds returns the tightest bounds containing all pts. It returns a
// zero Bounds when pts is empty.
func NewBounds(pts ...Point) Bounds {
	if len(pts) == 0 {
		return Bounds{}
	}
	b := Bounds{
		MinLat: pts[0].Lat, MaxLat: pts[0].Lat,
		MinLon: pts[0].Lon, MaxLon: pts[0].Lon,
	}
	for _, p := range pts[1:] {
		b = b.Extend(p)
	}
	return b
}

// Extend returns bounds grown to include p.
func (b Bounds) Extend(p Point) Bounds {
	b.MinLat = math.Min(b.MinLat, p.Lat)
	b.MaxLat = math.Max(b.MaxLat, p.Lat)
	b.MinLon = math.Min(b.MinLon, p.Lon)
	b.MaxLon = math.Max(b.MaxLon, p.Lon)
	return b
}

// Contains reports whether p lies inside the bounds (inclusive).
func (b Bounds) Contains(p Point) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Center returns the midpoint of the bounds.
func (b Bounds) Center() Point {
	return Point{Lat: (b.MinLat + b.MaxLat) / 2, Lon: (b.MinLon + b.MaxLon) / 2}
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

func normalizeLon(lon float64) float64 {
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return lon
}
