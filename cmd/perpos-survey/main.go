// Command perpos-survey runs the offline WiFi fingerprint survey over
// the evaluation building's deployment and writes the radio map to a
// JSONL file — the artifact a deployment operator would produce once
// and ship to every positioning engine.
//
// Usage:
//
//	perpos-survey -o radiomap.jsonl
//	perpos-survey -o radiomap.jsonl -grid 1.5 -scans 8
//	perpos-survey -check radiomap.jsonl   # validate a saved map
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"perpos/internal/building"
	"perpos/internal/geo"
	"perpos/internal/wifi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-survey:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-survey", flag.ContinueOnError)
	out := fs.String("o", "radiomap.jsonl", "output file")
	grid := fs.Float64("grid", 2, "survey grid step in metres")
	scans := fs.Int("scans", 4, "scans averaged per cell")
	seed := fs.Int64("seed", 1, "fading seed")
	check := fs.String("check", "", "validate an existing radio map instead of surveying")
	if err := fs.Parse(args); err != nil {
		return err
	}

	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)

	if *check != "" {
		return validate(*check, network)
	}

	db := wifi.Survey(network, 0, wifi.SurveyConfig{
		GridStep:     *grid,
		ScansPerCell: *scans,
		Seed:         *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := wifi.WriteDatabase(f, db); err != nil {
		return err
	}
	fmt.Printf("surveyed %d cells (grid %.1f m, %d scans/cell) -> %s\n",
		db.Len(), *grid, *scans, *out)
	return nil
}

// validate loads a radio map and probes it at a few known positions.
func validate(path string, network *wifi.Network) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	db, err := wifi.ReadDatabase(f)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano() % 1000))
	probes := []geo.ENU{
		{East: 10, North: 6},
		{East: 20, North: 10},
		{East: 28, North: 2},
	}
	fmt.Printf("radio map: %d cells\n", db.Len())
	for _, p := range probes {
		scan := network.ScanAt(p, 0, time.Now(), rng)
		est, err := db.Locate(scan, 3)
		if err != nil {
			return fmt.Errorf("locate at %v: %w", p, err)
		}
		fmt.Printf("probe %v -> %v (room %s, err %.1f m)\n",
			p, est.Pos, est.RoomID, est.Pos.Distance(p))
	}
	return nil
}
