// Command perpos-bench regenerates the experiment tables of
// EXPERIMENTS.md: every paper evaluation artifact (DESIGN.md §4,
// experiments E1–E8) is re-run on the simulated substrates and printed
// as an aligned table.
//
// Usage:
//
//	perpos-bench            # run all experiments
//	perpos-bench -e E5      # one experiment
//	perpos-bench -e E5 -series
//	perpos-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perpos/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-bench", flag.ContinueOnError)
	exp := fs.String("e", "", "experiment ID to run (default: all)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	series := fs.Bool("series", false, "emit plot series where supported (E5)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range eval.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	experiments := eval.Experiments()
	if *series {
		experiments["E5"] = func() (eval.Result, error) {
			return eval.RunE5(eval.E5Config{Series: true})
		}
	}

	ids := eval.IDs()
	if *exp != "" {
		id := strings.ToUpper(*exp)
		if _, ok := experiments[id]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		ids = []string{id}
	}

	for _, id := range ids {
		result, err := experiments[id]()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(result.Table())
	}
	return nil
}
