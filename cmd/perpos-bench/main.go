// Command perpos-bench regenerates the experiment tables of
// EXPERIMENTS.md: every paper evaluation artifact (DESIGN.md §4,
// experiments E1–E8) is re-run on the simulated substrates and printed
// as an aligned table.
//
// Usage:
//
//	perpos-bench            # run all experiments
//	perpos-bench -e E5      # one experiment
//	perpos-bench -e E5 -series
//	perpos-bench -list
//	perpos-bench -json bench.json   # also write per-experiment timings
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"perpos/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-bench", flag.ContinueOnError)
	exp := fs.String("e", "", "experiment ID to run (default: all)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	series := fs.Bool("series", false, "emit plot series where supported (E5)")
	jsonPath := fs.String("json", "", "write per-experiment timings (ns/op, samples/s) to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range eval.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	experiments := eval.Experiments()
	if *series {
		experiments["E5"] = func() (eval.Result, error) {
			return eval.RunE5(eval.E5Config{Series: true})
		}
	}

	ids := eval.IDs()
	if *exp != "" {
		id := strings.ToUpper(*exp)
		if _, ok := experiments[id]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		ids = []string{id}
	}

	var timings []timing
	for _, id := range ids {
		start := time.Now()
		result, err := experiments[id]()
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(result.Table())
		t := timing{ID: id, Title: result.Title, NsOp: elapsed.Nanoseconds(), Samples: result.Samples}
		if result.Samples > 0 && elapsed > 0 {
			t.SamplesPerSec = float64(result.Samples) / elapsed.Seconds()
		}
		timings = append(timings, t)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(timings, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d timings to %s\n", len(timings), *jsonPath)
	}
	return nil
}

// timing is one experiment's wall-clock record for -json output.
type timing struct {
	ID            string  `json:"id"`
	Title         string  `json:"title"`
	NsOp          int64   `json:"ns_op"`
	Samples       int     `json:"samples,omitempty"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
}
