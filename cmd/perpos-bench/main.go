// Command perpos-bench regenerates the experiment tables of
// EXPERIMENTS.md: every paper evaluation artifact (DESIGN.md §4,
// experiments E1–E8) is re-run on the simulated substrates and printed
// as an aligned table.
//
// Usage:
//
//	perpos-bench            # run all experiments
//	perpos-bench -e E5      # one experiment
//	perpos-bench -e E5 -series
//	perpos-bench -list
//	perpos-bench -json bench.json   # also write per-experiment timings
//
// It is also the CI regression gate over those timing files:
//
//	perpos-bench -gobench bench.txt -json new.json
//	                        # convert `go test -bench` output to timings
//	perpos-bench -compare old.json new.json -tol 10%
//	                        # fail (exit 1) when any timing in old.json
//	                        # regressed beyond the tolerance in new.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"perpos/internal/eval"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-bench", flag.ContinueOnError)
	exp := fs.String("e", "", "experiment ID to run (default: all)")
	list := fs.Bool("list", false, "list experiment IDs and exit")
	series := fs.Bool("series", false, "emit plot series where supported (E5)")
	jsonPath := fs.String("json", "", "write per-experiment timings (ns/op, samples/s, allocs/op, B/op) to this file")
	compare := fs.Bool("compare", false, "compare two timing JSON files (old new) and fail on regressions beyond -tol")
	ratio := fs.String("ratio", "", "timing JSON file for a within-run overhead gate: every -against entry must be within -tol of the matching -base entry")
	base := fs.String("base", "", "benchmark ID prefix of the baseline family for -ratio")
	against := fs.String("against", "", "benchmark ID prefix of the measured family for -ratio")
	tol := fs.String("tol", "10%", "allowed regression for -compare/-ratio, as a percentage (10%) or fraction (0.1)")
	gobench := fs.String("gobench", "", "convert `go test -bench` output (a file, or - for stdin) to timing JSON instead of running experiments")
	keepProcs := fs.Bool("keep-procs", false, "with -gobench, keep the -<GOMAXPROCS> benchmark name suffix so widths stay distinct timing IDs")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// The flag package stops at the first positional, but -compare takes
	// two file operands followed (possibly) by -tol: keep re-parsing the
	// remainder so flags and operands interleave freely.
	var operands []string
	for rest := fs.Args(); len(rest) > 0; {
		if strings.HasPrefix(rest[0], "-") {
			if err := fs.Parse(rest); err != nil {
				return err
			}
			rest = fs.Args()
			continue
		}
		operands = append(operands, rest[0])
		rest = rest[1:]
	}

	if *compare {
		if len(operands) != 2 {
			return fmt.Errorf("-compare needs exactly two timing files (old new), got %d", len(operands))
		}
		return compareTimings(operands[0], operands[1], *tol)
	}
	if *ratio != "" {
		if *base == "" || *against == "" {
			return fmt.Errorf("-ratio needs -base and -against benchmark ID prefixes")
		}
		return ratioGate(*ratio, *base, *against, *tol)
	}
	if *gobench != "" {
		return convertGoBench(*gobench, *jsonPath, *keepProcs)
	}

	if *list {
		for _, id := range eval.IDs() {
			fmt.Println(id)
		}
		return nil
	}

	experiments := eval.Experiments()
	if *series {
		experiments["E5"] = func() (eval.Result, error) {
			return eval.RunE5(eval.E5Config{Series: true})
		}
	}

	ids := eval.IDs()
	if *exp != "" {
		id := strings.ToUpper(*exp)
		if _, ok := experiments[id]; !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		ids = []string{id}
	}

	var timings []timing
	for _, id := range ids {
		start := time.Now()
		result, err := experiments[id]()
		elapsed := time.Since(start)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fmt.Println(result.Table())
		t := timing{ID: id, Title: result.Title, NsOp: elapsed.Nanoseconds(), Samples: result.Samples}
		if result.Samples > 0 && elapsed > 0 {
			t.SamplesPerSec = float64(result.Samples) / elapsed.Seconds()
		}
		timings = append(timings, t)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(timings, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d timings to %s\n", len(timings), *jsonPath)
	}
	return nil
}

// timing is one experiment's wall-clock record for -json output.
// AllocsOp and BytesOp are only populated from -gobench input (the
// experiment runner does not meter its own allocations).
type timing struct {
	ID            string  `json:"id"`
	Title         string  `json:"title"`
	NsOp          int64   `json:"ns_op"`
	Samples       int     `json:"samples,omitempty"`
	SamplesPerSec float64 `json:"samples_per_sec,omitempty"`
	AllocsOp      int64   `json:"allocs_op,omitempty"`
	BytesOp       int64   `json:"bytes_op,omitempty"`
}

// convertGoBench parses `go test -bench` output into the same timing
// JSON the experiment runner emits, so one -compare gate covers both.
func convertGoBench(path, jsonPath string, keepProcs bool) error {
	r := os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	timings, err := parseGoBench(r, keepProcs)
	if err != nil {
		return err
	}
	if len(timings) == 0 {
		return fmt.Errorf("no Benchmark lines in %s", path)
	}
	data, err := json.MarshalIndent(timings, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if jsonPath == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(jsonPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d timings to %s\n", len(timings), jsonPath)
	return nil
}

// parseGoBench reads benchmark result lines ("BenchmarkX-8  1  42 ns/op
// 120 B/op  3 allocs/op  10.5 samples/s ..."), keeping ns/op, B/op,
// allocs/op and the samples/s custom metric. By default the
// -<GOMAXPROCS> suffix is stripped so IDs are machine-independent;
// keepProcs retains it for multi-width runs (`go test -cpu 1,4`),
// where the width is a deliberate configuration dimension and each
// width gates against its own baseline row.
func parseGoBench(r io.Reader, keepProcs bool) ([]timing, error) {
	var out []timing
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		id := fields[0]
		if !keepProcs {
			id = stripProcSuffix(id)
		}
		t := timing{ID: id, Title: "go test -bench"}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				t.NsOp = int64(val)
			case "samples/s":
				t.SamplesPerSec = val
			case "allocs/op":
				t.AllocsOp = int64(val)
			case "B/op":
				t.BytesOp = int64(val)
			}
		}
		if t.NsOp == 0 && t.SamplesPerSec == 0 {
			continue
		}
		out = append(out, t)
	}
	return out, sc.Err()
}

// stripProcSuffix removes go test's trailing -<GOMAXPROCS> from a
// benchmark name.
func stripProcSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// compareTimings is the regression gate: every timing in the old
// (baseline) file must still be present in the new file and must not
// have regressed beyond the tolerance on any shared metric. For time,
// throughput entries (samples/s, higher is better) are preferred over
// wall-clock (ns/op, lower is better) when both files carry them;
// allocs/op and B/op (lower is better) are additionally checked
// whenever the baseline records them, so an allocation regression
// fails the gate even if throughput holds up. Extra entries in the new
// file — freshly added benchmarks — are ignored.
func compareTimings(oldPath, newPath, tolSpec string) error {
	tolerance, err := parseTolerance(tolSpec)
	if err != nil {
		return err
	}
	baseline, err := readTimings(oldPath)
	if err != nil {
		return err
	}
	current, err := readTimings(newPath)
	if err != nil {
		return err
	}
	byID := make(map[string]timing, len(current))
	for _, t := range current {
		byID[t.ID] = t
	}

	var regressions []string
	for _, o := range baseline {
		n, ok := byID[o.ID]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: missing from %s", o.ID, newPath))
			fmt.Printf("%-52s MISSING\n", o.ID)
			continue
		}
		metrics := pickMetrics(o, n)
		if len(metrics) == 0 {
			regressions = append(regressions, fmt.Sprintf("%s: no comparable metric", o.ID))
			fmt.Printf("%-52s NO METRIC\n", o.ID)
			continue
		}
		for _, m := range metrics {
			delta := (m.newV - m.oldV) / m.oldV
			bad := (m.higherBetter && delta < -tolerance) || (!m.higherBetter && delta > tolerance)
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
					o.ID, m.name, m.oldV, m.newV, delta*100, tolerance*100))
			}
			fmt.Printf("%-52s %-12s old=%-12.4g new=%-12.4g %+6.1f%%  %s\n",
				o.ID, m.name, m.oldV, m.newV, delta*100, status)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("all %d timings within %.0f%% of %s\n", len(baseline), tolerance*100, oldPath)
	return nil
}

// ratioGate is the within-run overhead gate: for every timing in one
// file whose ID starts with basePrefix, the entry with the same suffix
// under againstPrefix must exist and must not be worse by more than the
// tolerance. Because both families come from the same run on the same
// machine, the tolerance can be far tighter than the cross-run
// -compare gate — it bounds a feature's overhead, not hardware jitter.
func ratioGate(path, basePrefix, againstPrefix, tolSpec string) error {
	tolerance, err := parseTolerance(tolSpec)
	if err != nil {
		return err
	}
	timings, err := readTimings(path)
	if err != nil {
		return err
	}
	byID := make(map[string]timing, len(timings))
	for _, t := range timings {
		byID[t.ID] = t
	}

	checked := 0
	var regressions []string
	for _, b := range timings {
		if b.ID != basePrefix && !strings.HasPrefix(b.ID, basePrefix+"/") {
			continue
		}
		id := againstPrefix + strings.TrimPrefix(b.ID, basePrefix)
		n, ok := byID[id]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("%s: no matching %s entry", b.ID, id))
			fmt.Printf("%-52s MISSING %s\n", b.ID, id)
			continue
		}
		metrics := pickMetrics(b, n)
		if len(metrics) == 0 {
			regressions = append(regressions, fmt.Sprintf("%s vs %s: no comparable metric", b.ID, id))
			continue
		}
		checked++
		for _, m := range metrics {
			delta := (m.newV - m.oldV) / m.oldV
			bad := (m.higherBetter && delta < -tolerance) || (!m.higherBetter && delta > tolerance)
			status := "ok"
			if bad {
				status = "REGRESSED"
				regressions = append(regressions, fmt.Sprintf("%s vs %s: %s %.4g -> %.4g (%+.1f%%, tolerance %.0f%%)",
					b.ID, id, m.name, m.oldV, m.newV, delta*100, tolerance*100))
			}
			fmt.Printf("%-52s %-12s base=%-12.4g new=%-12.4g %+6.1f%%  %s\n",
				id, m.name, m.oldV, m.newV, delta*100, status)
		}
	}
	if checked == 0 && len(regressions) == 0 {
		return fmt.Errorf("no %s entries in %s", basePrefix, path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d overhead violation(s):\n  %s", len(regressions), strings.Join(regressions, "\n  "))
	}
	fmt.Printf("all %d %s timings within %.0f%% of %s\n", checked, againstPrefix, tolerance*100, basePrefix)
	return nil
}

// metricPair is one comparable metric shared by a baseline/current
// timing pair.
type metricPair struct {
	name         string
	oldV, newV   float64
	higherBetter bool
}

// pickMetrics lists every metric to gate for a baseline/current pair:
// one time metric (samples/s preferred over ns/op) plus allocs/op and
// B/op when the baseline pins them. A memory metric the baseline
// records but the new run lacks compares as 0 on the new side, which
// can only pass the gate if the baseline was already 0 — dropping
// -benchmem from the CI run cannot silently disable the check.
func pickMetrics(o, n timing) []metricPair {
	var out []metricPair
	if o.SamplesPerSec > 0 && n.SamplesPerSec > 0 {
		out = append(out, metricPair{"samples/s", o.SamplesPerSec, n.SamplesPerSec, true})
	} else if o.NsOp > 0 && n.NsOp > 0 {
		out = append(out, metricPair{"ns/op", float64(o.NsOp), float64(n.NsOp), false})
	}
	if o.AllocsOp > 0 {
		out = append(out, metricPair{"allocs/op", float64(o.AllocsOp), float64(n.AllocsOp), false})
	}
	if o.BytesOp > 0 {
		out = append(out, metricPair{"B/op", float64(o.BytesOp), float64(n.BytesOp), false})
	}
	return out
}

// parseTolerance accepts "10%" or "0.1".
func parseTolerance(spec string) (float64, error) {
	s := strings.TrimSuffix(spec, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("bad tolerance %q: %w", spec, err)
	}
	if s != spec {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("tolerance %q out of range [0%%, 100%%)", spec)
	}
	return v, nil
}

// readTimings loads a timing JSON file written by -json or -gobench.
func readTimings(path string) ([]timing, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []timing
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no timings", path)
	}
	return out, nil
}
