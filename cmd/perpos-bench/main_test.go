package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: perpos/internal/runtime
BenchmarkRuntimeSaturated/sessions_100-1         	  428204	      5969 ns/op	    167480 samples/s	    1746 B/op	       5 allocs/op
BenchmarkRuntimeSaturated/sessions_100-4         	  512000	      2301 ns/op	    434500 samples/s	    1702 B/op	       5 allocs/op
BenchmarkRuntimeSessions/paced-4                 	     100	 10000000 ns/op	       800.0 samples/s
PASS
`

func TestParseGoBenchStripsProcSuffix(t *testing.T) {
	timings, err := parseGoBench(strings.NewReader(benchOutput), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 3 {
		t.Fatalf("got %d timings, want 3", len(timings))
	}
	// Both widths collapse to the same ID: the later line wins lookups
	// in compare maps, which is why multi-width runs need -keep-procs.
	if got := timings[0].ID; got != "BenchmarkRuntimeSaturated/sessions_100" {
		t.Errorf("ID[0] = %q, want suffix stripped", got)
	}
	if got := timings[1].ID; got != "BenchmarkRuntimeSaturated/sessions_100" {
		t.Errorf("ID[1] = %q, want suffix stripped", got)
	}
	if got := timings[2].ID; got != "BenchmarkRuntimeSessions/paced" {
		t.Errorf("ID[2] = %q, want suffix stripped", got)
	}
}

func TestParseGoBenchKeepProcs(t *testing.T) {
	timings, err := parseGoBench(strings.NewReader(benchOutput), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(timings) != 3 {
		t.Fatalf("got %d timings, want 3", len(timings))
	}
	want := []string{
		"BenchmarkRuntimeSaturated/sessions_100-1",
		"BenchmarkRuntimeSaturated/sessions_100-4",
		"BenchmarkRuntimeSessions/paced-4",
	}
	for i, w := range want {
		if timings[i].ID != w {
			t.Errorf("ID[%d] = %q, want %q", i, timings[i].ID, w)
		}
	}
	// Widths stay distinct, so per-width metrics survive side by side.
	if timings[0].SamplesPerSec == timings[1].SamplesPerSec {
		t.Error("expected distinct samples/s per width")
	}
}

func TestParseGoBenchMetrics(t *testing.T) {
	timings, err := parseGoBench(strings.NewReader(benchOutput), true)
	if err != nil {
		t.Fatal(err)
	}
	got := timings[0]
	if got.NsOp != 5969 {
		t.Errorf("NsOp = %d, want 5969", got.NsOp)
	}
	if got.SamplesPerSec != 167480 {
		t.Errorf("SamplesPerSec = %g, want 167480", got.SamplesPerSec)
	}
	if got.AllocsOp != 5 {
		t.Errorf("AllocsOp = %d, want 5", got.AllocsOp)
	}
	if got.BytesOp != 1746 {
		t.Errorf("BytesOp = %d, want 1746", got.BytesOp)
	}
	// The paced line carries no -benchmem columns; they must stay zero
	// (omitted from JSON) rather than corrupting the gate.
	if timings[2].AllocsOp != 0 || timings[2].BytesOp != 0 {
		t.Errorf("paced line grew memory metrics: %+v", timings[2])
	}
}

func TestStripProcSuffix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"BenchmarkX-8", "BenchmarkX"},
		{"BenchmarkX-16", "BenchmarkX"},
		{"BenchmarkX", "BenchmarkX"},
		{"BenchmarkX/sub_case-4", "BenchmarkX/sub_case"},
		// A trailing -word is part of the name, not a width.
		{"BenchmarkX-fast", "BenchmarkX-fast"},
	}
	for _, c := range cases {
		if got := stripProcSuffix(c.in); got != c.want {
			t.Errorf("stripProcSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
