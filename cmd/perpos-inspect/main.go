// Command perpos-inspect renders the three levels of abstraction of a
// PerPos pipeline (Fig. 2): the Process Structure Layer's component
// tree, the Process Channel Layer's channels with their features, and
// the Positioning Layer provider — the seamful-design inspection
// surface for developers (§4).
//
// Usage:
//
//	perpos-inspect              # inspect the Fig. 2 fusion pipeline
//	perpos-inspect -layer psl   # one layer only (psl|pcl|pl)
//	perpos-inspect -map         # ASCII map of the WiFi deployment [2]
//	perpos-inspect -dot         # Graphviz DOT of the pipeline
//	perpos-inspect -trace       # replay briefly with Trace features and
//	                            # print each channel's end-to-end trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/eval"
	"perpos/internal/filter"
	"perpos/internal/obs"
	"perpos/internal/viz"
	"perpos/internal/wifi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-inspect", flag.ContinueOnError)
	layerFlag := fs.String("layer", "all", "layer to show: psl, pcl, pl or all")
	mapFlag := fs.Bool("map", false, "render the WiFi infrastructure map instead")
	dotFlag := fs.Bool("dot", false, "emit the pipeline as Graphviz DOT instead")
	traceFlag := fs.Bool("trace", false, "replay briefly with Trace features attached and print each channel's end-to-end trace instead")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *mapFlag {
		return printInfrastructureMap()
	}

	g, layer, _, provider, err := eval.BuildFig2(1)
	if err != nil {
		return err
	}
	defer layer.Close()

	if *dotFlag {
		return g.WriteDOT(os.Stdout, "perpos")
	}
	if *traceFlag {
		return printTraces(g, layer)
	}

	show := strings.ToLower(*layerFlag)
	out := &strings.Builder{}

	if show == "all" || show == "psl" {
		fmt.Fprintln(out, "=== Process Structure Layer (PSL) ===")
		for _, n := range g.Nodes() {
			spec := n.Spec()
			role := "component"
			switch {
			case spec.IsSource():
				role = "source"
			case spec.IsSink():
				role = "sink"
			case spec.IsMerge():
				role = "merge"
			}
			fmt.Fprintf(out, "%-16s %-9s kind=%-10s features=%v\n",
				n.ID(), role, spec.Output.Kind, n.Capabilities())
			for i, up := range n.Upstream() {
				if up == nil {
					fmt.Fprintf(out, "  port %d: (unconnected, accepts %v)\n", i, spec.Inputs[i].Accepts)
					continue
				}
				fmt.Fprintf(out, "  port %d <- %s\n", i, up.ID())
			}
		}
		fmt.Fprintf(out, "edges: %d\n\n", len(g.Edges()))
	}

	if show == "all" || show == "pcl" {
		fmt.Fprintln(out, "=== Process Channel Layer (PCL) ===")
		v := layer.View()
		fmt.Fprintf(out, "sources: %v\nmerges:  %v\nsinks:   %v\n", v.Sources, v.Merges, v.Sinks)
		for _, c := range v.Channels {
			fmt.Fprintf(out, "channel %-28s nodes=%v features=%v\n", c.ID, c.Nodes, c.Features)
		}
		out.WriteByte('\n')
	}

	if show == "all" || show == "pl" {
		fmt.Fprintln(out, "=== Positioning Layer (PL) ===")
		info := provider.Info()
		fmt.Fprintf(out, "provider %q: technology=%s accuracy=%.1fm roomLevel=%v\n",
			provider.Name(), info.Technology, info.TypicalAccuracy, info.RoomLevel)
		for _, name := range []string{filter.FeatureLikelihood, "gps.hdop"} {
			if f, ok := provider.Feature(name); ok {
				fmt.Fprintf(out, "feature %-12s reachable (%T)\n", name, f)
			} else {
				fmt.Fprintf(out, "feature %-12s not reachable\n", name)
			}
		}
	}

	if show != "all" && show != "psl" && show != "pcl" && show != "pl" {
		return fmt.Errorf("unknown layer %q", show)
	}
	fmt.Print(out.String())
	return nil
}

// printTraces is the translucent-tracing view: every component gets a
// Trace feature (span stamps on each emission), every channel a
// ChannelTrace feature (retaining its last delivery's data tree), the
// pipeline replays a few steps, and each channel's tree is printed as
// an indented end-to-end trace — where each delivered datum spent its
// wall-clock time, organised by the logical time the PSL already
// maintains.
func printTraces(g *core.Graph, layer *channel.Layer) error {
	if err := obs.InstrumentGraph(g); err != nil {
		return err
	}
	channels := layer.Channels()
	traces := make(map[string]*obs.ChannelTrace, len(channels))
	for _, c := range channels {
		ct := obs.NewChannelTrace()
		if err := c.AttachFeature(ct); err != nil {
			return err
		}
		traces[c.ID()] = ct
	}
	if _, err := g.Run(40); err != nil {
		return err
	}
	fmt.Println("=== end-to-end traces (last delivery per channel) ===")
	for _, c := range channels {
		fmt.Printf("channel %s\n", c.ID())
		t, _ := traces[c.ID()].Last()
		for _, line := range strings.Split(strings.TrimRight(obs.FormatTrace(t), "\n"), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

// printInfrastructureMap renders the evaluation building's WiFi
// deployment — the infrastructure-visualization use case of [2].
func printInfrastructureMap() error {
	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	var markers []viz.Marker
	for i, ap := range network.APs() {
		label := ""
		if i == 0 {
			label = "access point"
		}
		markers = append(markers, viz.Marker{Pos: ap.Pos, Rune: 'A', Label: label})
	}
	fmt.Printf("%s\n", b)
	fmt.Print(viz.DrawInfrastructure(b, 0, 100, markers))
	return nil
}
