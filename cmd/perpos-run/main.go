// Command perpos-run executes a PerPos pipeline over a simulated
// scenario and streams the delivered positions to stdout — the fastest
// way to see the middleware moving data.
//
// Usage:
//
//	perpos-run                      # Fig. 2 fusion pipeline, corridor walk
//	perpos-run -pipeline gps        # plain GPS pipeline (Fig. 1 outdoor half)
//	perpos-run -pipeline roomnumber # the Fig. 1 Room Number application
//	perpos-run -seed 7 -max 20
//	perpos-run -config pipeline.json   # declarative system-level configuration
//	perpos-run -targets 25          # 25 concurrent tracked targets, one
//	                                # session each from a shared blueprint
//	perpos-run -chaos               # supervised fusion session surviving an
//	                                # injected WiFi outage (self-healing demo)
//	perpos-run -chaos -chaos-script examples/configs/chaos-fusion.json
//	                                # same demo driven by a declarative
//	                                # fault script from the pipeline config
//	perpos-run -chaos -checkpoint-dir /tmp/perpos-ckpt
//	                                # checkpoint the session durably, then
//	                                # evict and resume it from disk
//	perpos-run -targets 25 -metrics-addr :8080
//	                                # serve /metrics (JSON) + /debug/pprof
//	                                # while the workload runs; the final
//	                                # snapshot is echoed on exit
//	perpos-run -rollout             # roll a live fleet from the GPS-only
//	                                # revision to the fusion revision
//	                                # (canary → gate → ramp, zero downtime)
//	perpos-run -rollout-fail        # same roll with a broken WiFi branch:
//	                                # the canary gate trips and the fleet
//	                                # is rolled back to the old revision
//	perpos-run -cluster 3          # fault-tolerant session tier: 3 nodes,
//	                                # 60 targets, a hard node kill with
//	                                # checkpointed failover, then a node
//	                                # join with minimal-range rebalancing
//	perpos-run -cluster 3 -node n2 # same demo, killing node n2
//	perpos-run -rules examples/configs/rules-fusion.json
//	                                # self-adaptation demo: declarative
//	                                # rules engage live graph edits as the
//	                                # GPS accuracy degrades, defer to a
//	                                # supervisor reroute during a WiFi
//	                                # outage, and unwind on recovery
//
// Configurations (see internal/config) may reference two pre-built
// instances: "gps" (a receiver on a commute trace) and "app" (a
// printing sink), plus every component type in internal/catalog and
// the features "satellites", "hdop" and "parser-stats".
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"perpos/internal/building"
	"perpos/internal/catalog"
	"perpos/internal/chaos"
	"perpos/internal/checkpoint"
	"perpos/internal/cluster"
	"perpos/internal/config"
	"perpos/internal/core"
	"perpos/internal/energy"
	"perpos/internal/eval"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/health"
	"perpos/internal/obs"
	"perpos/internal/positioning"
	"perpos/internal/rules"
	"perpos/internal/runtime"
	"perpos/internal/trace"
	"perpos/internal/wifi"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "perpos-run:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("perpos-run", flag.ContinueOnError)
	pipeline := fs.String("pipeline", "fusion", "pipeline: fusion, gps or roomnumber")
	configPath := fs.String("config", "", "JSON pipeline definition (system-level configuration)")
	seed := fs.Int64("seed", 1, "simulation seed")
	maxLines := fs.Int("max", 50, "maximum positions to print (0 = all)")
	targets := fs.Int("targets", 0, "track N concurrent targets through per-target sessions (multi-tenant mode)")
	chaosDemo := fs.Bool("chaos", false, "run a supervised fusion session through an injected WiFi outage")
	rolloutDemo := fs.Bool("rollout", false, "roll a live session fleet from the GPS-only revision to the fusion revision (canary → gate → ramp)")
	rolloutFail := fs.Bool("rollout-fail", false, "rollout demo with a broken WiFi branch: the canary gate trips and the fleet rolls back")
	chaosScript := fs.String("chaos-script", "", "pipeline JSON whose chaos block drives the -chaos fault script (default: built-in kill/heal)")
	rulesPath := fs.String("rules", "", "pipeline JSON whose rules block drives the self-adaptation demo (engage → arbitrate → disengage transcript)")
	checkpointDir := fs.String("checkpoint-dir", "", "directory for durable session checkpoints; with -chaos the session is evicted and resumed from it")
	clusterN := fs.Int("cluster", 0, "run the distributed session tier demo with N nodes: kill one node (checkpointed failover), then join a fresh one (minimal-range rebalance)")
	nodeID := fs.String("node", "", "with -cluster: the node ID to kill mid-demo (default: the node carrying the most sessions)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (JSON) and /debug/pprof on this address while running (\":0\" picks a free port); with -targets or -chaos the session runtime reports into it")
	if err := fs.Parse(args); err != nil {
		return err
	}

	// The metrics listener outlives the workload: the final snapshot is
	// scraped from our own endpoint — the same bytes an operator's curl
	// would see — before the deferred Close releases the port (defers run
	// LIFO, so the dump precedes the shutdown).
	var hub *obs.Metrics
	if *metricsAddr != "" {
		hub = obs.New()
		srv, err := obs.Serve(*metricsAddr, hub)
		if err != nil {
			return err
		}
		defer srv.Close()
		defer dumpMetrics(srv.Addr())
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
	}

	if *clusterN > 0 {
		return runCluster(*clusterN, *nodeID, *targets, *configPath, *seed, hub)
	}
	if *configPath != "" {
		return runConfigured(*configPath, *seed, *maxLines)
	}
	if *targets > 0 {
		return runTargets(*targets, *seed, hub)
	}
	if *rulesPath != "" {
		return runRules(*rulesPath, *seed, hub)
	}
	if *chaosDemo {
		return runChaos(*seed, *checkpointDir, *chaosScript, hub)
	}
	if *rolloutDemo || *rolloutFail {
		return runRollout(*seed, *rolloutFail, hub)
	}

	switch *pipeline {
	case "fusion":
		return runFusion(*seed, *maxLines)
	case "gps":
		return runGPS(*seed, *maxLines)
	case "roomnumber":
		return runRoomNumber(*seed, *maxLines)
	default:
		return fmt.Errorf("unknown pipeline %q", *pipeline)
	}
}

// dumpMetrics scrapes the process's own /metrics endpoint and echoes
// the JSON snapshot to stdout — the state an operator's last curl
// would have seen.
func dumpMetrics(addr string) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "perpos-run: metrics scrape:", err)
		return
	}
	defer resp.Body.Close()
	fmt.Println("=== final /metrics snapshot ===")
	_, _ = io.Copy(os.Stdout, resp.Body)
}

// runConfigured builds and runs a declarative pipeline definition.
func runConfigured(path string, seed int64, maxLines int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := config.Parse(f)
	if err != nil {
		return err
	}

	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1})
	reg, err := catalog.Standard(catalog.Deps{Building: b, Database: db})
	if err != nil {
		return err
	}
	tr := trace.Commute(b, seed, 150, 500*time.Millisecond)

	printed := 0
	// The configured application consumes high-level outputs only, so
	// declarative resolution has to build the processing chain instead
	// of wiring raw sensor data straight to the app.
	sink := core.NewSink("app",
		[]core.Kind{positioning.KindPosition, positioning.KindRoom},
		core.WithCallback(func(s core.Sample) {
			if maxLines > 0 && printed >= maxLines {
				return
			}
			printed++
			fmt.Printf("%v %v\n", s.Kind, s.Payload)
		}))
	loader := &config.Loader{
		Registry: reg,
		Instances: map[string]core.Component{
			"gps":  gps.NewReceiver("gps", tr, gps.Config{Seed: seed + 2, ColdStart: 2 * time.Second}),
			"wifi": wifi.NewSensor("wifi", network, tr, 2*time.Second, seed+3),
			"app":  sink,
		},
		Features: map[string]func() core.Feature{
			"satellites":   func() core.Feature { return gps.NewSatellitesFeature() },
			"hdop":         func() core.Feature { return gps.NewHDOPFeature() },
			"parser-stats": func() core.Feature { return gps.NewStatsFeature() },
		},
	}
	g := core.New()
	if err := loader.Build(g, p); err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("configured pipeline invalid: %w", err)
	}
	if _, err := g.Run(0); err != nil {
		return err
	}
	fmt.Printf("pipeline %q delivered %d samples\n", p.Name, sink.Len())
	return nil
}

// runTargets is the multi-tenant mode: N targets tracked through the
// positioning manager, each backed by its own pipeline session
// instantiated from ONE shared Fig. 2 fusion blueprint (building model
// and WiFi database shared, sensors and sink per target), replayed
// concurrently and summarised deterministically. A non-nil hub gets
// the full runtime observability wiring (lifecycle gauges, emission
// taps, tree depths).
func runTargets(n int, seed int64, hub *obs.Metrics) error {
	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1})
	bp, err := catalog.FusionBlueprint(
		catalog.Deps{Building: b, Database: db},
		filter.Config{Particles: 200, Seed: seed + 2})
	if err != nil {
		return err
	}

	rt, err := runtime.NewManager(runtime.SessionConfig{
		Blueprint:     bp,
		Provider:      positioning.ProviderInfo{Technology: "fused", TypicalAccuracy: 4},
		History:       64,
		Observability: hub,
		Overrides: func(sessionID string) []core.InstantiateOption {
			var i int64
			fmt.Sscanf(sessionID, "target-%d", &i)
			tr := trace.Commute(b, seed+i, 120, 500*time.Millisecond)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed + i + 100, ColdStart: 2 * time.Second})
				}),
				core.WithComponentOverride("wifi", func(cid string) core.Component {
					return wifi.NewSensor(cid, network, tr, 2*time.Second, seed+i+200)
				}),
			}
		},
	})
	if err != nil {
		return err
	}
	defer rt.Close()

	pm := &positioning.Manager{}
	pm.BindSource(rt)

	type outcome struct {
		delivered int
		last      positioning.Position
	}
	outcomes := make([]outcome, n)
	sessions := make([]*runtime.Session, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("target-%03d", i)
		tgt, err := pm.TrackErr(id)
		if err != nil {
			return err
		}
		i := i
		tgt.Providers()[0].Subscribe(func(pos positioning.Position) {
			outcomes[i].delivered++
			outcomes[i].last = pos
		})
		s, ok := rt.Get(id)
		if !ok {
			return fmt.Errorf("no session for %s", id)
		}
		sessions[i] = s
	}

	// Replay every target's trace concurrently, one goroutine per
	// session; propagation within a session stays synchronous, so each
	// target's delivery sequence is deterministic.
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, s := range sessions {
		i, s := i, s
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = s.Run(0)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("target-%03d: %w", i, err)
		}
	}

	total := 0
	for i, o := range outcomes {
		fmt.Printf("target-%03d: %d positions, last %v\n", i, o.delivered, o.last)
		total += o.delivered
		pm.Untrack(fmt.Sprintf("target-%03d", i))
	}
	fmt.Printf("%d targets, %d positions total, %.0f samples/s aggregate\n",
		n, total, float64(total)/elapsed.Seconds())
	if rt.Len() != 0 {
		return fmt.Errorf("%d sessions leaked after untrack", rt.Len())
	}
	return nil
}

// runChaos is the self-healing demo: a supervised fusion session whose
// WiFi sensor is chaos-killed mid-run. The session's supervisor trips
// the breaker, degrades the pipeline to the GPS branch (positions keep
// flowing), and restores full fusion when the sensor comes back. The
// fault script comes from a pipeline definition's chaos block when
// scriptPath is set; with ckptDir the session also checkpoints durably
// and is evicted and resumed from disk at the end — the crash-recovery
// path exercised interactively. A non-nil hub additionally collects
// runtime metrics, including checkpoint write accounting.
func runChaos(seed int64, ckptDir, scriptPath string, hub *obs.Metrics) error {
	script := chaos.Schedule{Steps: []chaos.Step{
		{At: 0, Action: chaos.ActionKill, Target: "wifi"},
		{At: 400 * time.Millisecond, Action: chaos.ActionHeal, Target: "wifi"},
	}}
	if scriptPath != "" {
		f, err := os.Open(scriptPath)
		if err != nil {
			return err
		}
		p, err := config.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		if p.Chaos == nil {
			return fmt.Errorf("%s has no chaos block", scriptPath)
		}
		script = p.Chaos.Schedule()
		fmt.Printf("fault script %q: %d steps\n", p.Name, len(script.Steps))
	}

	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1, GridStep: 4})
	bp, err := catalog.FusionBlueprint(
		catalog.Deps{Building: b, Database: db},
		filter.Config{Particles: 150, Seed: seed + 2})
	if err != nil {
		return err
	}
	tr := trace.CorridorWalk(b, seed, 600, time.Second)

	var store *checkpoint.Store
	if ckptDir != "" {
		var storeOpts checkpoint.Options
		if hub != nil {
			storeOpts.OnAppend = hub.CheckpointAppend
		}
		store, err = checkpoint.Open(ckptDir, storeOpts)
		if err != nil {
			return err
		}
		defer store.Close()
	}

	var wifiChaos *chaos.Source
	m, err := runtime.NewManager(runtime.SessionConfig{
		Blueprint:     bp,
		Provider:      positioning.ProviderInfo{Technology: "fused", TypicalAccuracy: 4},
		History:       32,
		Observability: hub,
		Overrides: func(string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed + 3, ColdStart: time.Second})
				}),
				core.WithComponentOverride("wifi", func(cid string) core.Component {
					wifiChaos = chaos.WrapSource(wifi.NewSensor(cid, network, tr, time.Second, seed+4))
					return wifiChaos
				}),
			}
		},
		Health: &health.Policy{
			MaxConsecutiveErrors: 2,
			Deadlines:            map[string]time.Duration{"wifi": 200 * time.Millisecond},
			ProbeInterval:        10 * time.Millisecond,
			Sweep:                5 * time.Millisecond,
			Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
		},
		Reroutes:        catalog.FusionDegradation(),
		Checkpoints:     store,
		CheckpointEvery: 50 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer m.Close()

	s, err := m.GetOrCreate("demo")
	if err != nil {
		return err
	}
	provider := s.Provider()
	var delivered atomic.Int64
	provider.Subscribe(func(positioning.Position) { delivered.Add(1) })
	provider.NotifyAvailability(func(a positioning.Availability) {
		fmt.Printf("provider -> %s\n", a)
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		return err
	}
	wait := func(what string, cond func() bool) error {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return errors.New("timed out waiting for " + what)
	}

	if err := wait("fused positions", func() bool { return delivered.Load() >= 5 }); err != nil {
		return err
	}
	fmt.Printf("fusion delivering (%d positions); starting fault script\n", delivered.Load())

	scriptDone := script.Start(ctx, map[string]chaos.Controllable{"wifi": wifiChaos})
	if err := wait("degradation", func() bool {
		return provider.Availability() == positioning.TemporarilyUnavailable && s.Supervisor().Degraded()
	}); err != nil {
		return err
	}
	atOutage := delivered.Load()
	if err := wait("GPS-branch positions during the outage", func() bool {
		return delivered.Load() >= atOutage+5
	}); err != nil {
		return err
	}
	fmt.Printf("degraded to GPS branch; %d positions delivered during the outage\n",
		delivered.Load()-atOutage)

	if err := wait("recovery", func() bool {
		return provider.Availability() == positioning.Available && !s.Supervisor().Degraded()
	}); err != nil {
		return err
	}
	if err := <-scriptDone; err != nil {
		return fmt.Errorf("fault script: %w", err)
	}
	_ = s.Stop() // the injected outage leaves expected errors behind
	for _, h := range s.Monitor().Snapshot() {
		fmt.Printf("node %-18s errors=%d restarts=%d trips=%d\n", h.Node, h.Errors, h.Restarts, h.Trips)
	}
	fmt.Printf("survived injected outage: %d positions total, fusion restored\n", delivered.Load())

	if store != nil {
		// Crash-recovery epilogue: evict (final checkpoint to disk), then
		// rebuild the session from the blueprint and its stored state.
		m.Evict("demo")
		s2, err := m.ResumeSession("demo")
		if err != nil {
			return fmt.Errorf("resume from checkpoint: %w", err)
		}
		pf, ok := s2.Graph().Node("particle-filter")
		if !ok {
			return errors.New("resumed session lost its particle filter")
		}
		fmt.Printf("evicted and resumed from %s: particle-filter logical clock %d, provider %s\n",
			ckptDir, pf.Clock(), s2.Provider().Availability())

		var resumed atomic.Int64
		s2.Provider().Subscribe(func(positioning.Position) { resumed.Add(1) })
		ctx2, cancel2 := context.WithCancel(context.Background())
		defer cancel2()
		if err := s2.Start(ctx2, core.WithSourceInterval(5*time.Millisecond)); err != nil {
			return err
		}
		if err := wait("positions from the resumed session", func() bool { return resumed.Load() >= 5 }); err != nil {
			return err
		}
		_ = s2.Stop()
		fmt.Printf("resumed session delivered %d positions from checkpointed state\n", resumed.Load())
	}
	return nil
}

// runRules is the self-adaptation demo: a supervised fusion session
// carrying the declarative rules from a pipeline definition's rules
// block. A chaos corruptor pins the GPS HDOP on cue — the indoor walk's
// true HDOP sits above every threshold, so both the healthy and the
// degraded phases rewrite it. When accuracy degrades the insert rule
// splices an HDOP filter into the live pipeline and the swap rule
// reroutes delivery to the WiFi branch; a chaos WiFi outage then forces
// the supervisor to seize the contested edge (supervisor reroutes beat
// rules); after the heal the swap rule re-engages on its own, and a
// clean signal unwinds everything. The indented transcript lines are
// the rule engine's own event stream.
func runRules(path string, seed int64, hub *obs.Metrics) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	p, err := config.Parse(f)
	f.Close()
	if err != nil {
		return err
	}
	if p.Rules == nil {
		return fmt.Errorf("%s has no rules block", path)
	}

	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1, GridStep: 4})
	reg, err := catalog.Standard(catalog.Deps{Building: b, Database: db})
	if err != nil {
		return err
	}
	loader := &config.Loader{
		Registry: reg,
		Features: map[string]func() core.Feature{
			"hdop":     func() core.Feature { return gps.NewHDOPFeature() },
			"periodic": func() core.Feature { return energy.NewPeriodicStrategy(5*time.Second, time.Second) },
		},
	}
	rs, err := loader.Rules(p.Rules)
	if err != nil {
		return err
	}
	var insertRule, swapRule, insertNode string
	for _, r := range rs {
		fmt.Printf("rule %-16s when %s\n", r.Name, r.When)
		switch a := r.Action.(type) {
		case *rules.InsertAction:
			insertRule, insertNode = r.Name, a.ID
		case *rules.SwapAction:
			swapRule = r.Name
		}
	}
	if insertRule == "" || swapRule == "" {
		return fmt.Errorf("%s: the demo script needs an insert rule and a swap rule", path)
	}

	bp, err := catalog.FusionBlueprint(
		catalog.Deps{Building: b, Database: db},
		filter.Config{Particles: 150, Seed: seed + 2})
	if err != nil {
		return err
	}
	tr := trace.CorridorWalk(b, seed, 600, time.Second)

	// The script steers this: the corruptor pins every fix's HDOP so the
	// rule conditions see a crisp signal. 9.9 sits above both engage
	// thresholds; 3.0 sits inside the hysteresis band (rules stay
	// latched) yet below the inserted filter's drop cutoff, so the GPS
	// branch still delivers while the supervisor owns the edge; 1.0
	// clears everything.
	hdop := &atomic.Value{}
	hdop.Store(1.0)
	corrupt := func(s core.Sample) core.Sample {
		raw, ok := s.Payload.(string)
		if !ok {
			return s
		}
		s.Payload = gps.RewriteHDOP(raw, hdop.Load().(float64))
		return s
	}

	policy := &health.Policy{
		MaxConsecutiveErrors: 2,
		Deadlines:            map[string]time.Duration{"wifi": 200 * time.Millisecond},
		ProbeInterval:        10 * time.Millisecond,
		Sweep:                5 * time.Millisecond,
		Restart:              core.RestartPolicy{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	reroutes := catalog.FusionDegradation()
	if p.Supervision != nil {
		pl := p.Supervision.Policy()
		policy = &pl
		reroutes = p.Supervision.HealthReroutes()
	}

	var wifiChaos *chaos.Source
	m, err := runtime.NewManager(runtime.SessionConfig{
		Blueprint:     bp,
		Provider:      positioning.ProviderInfo{Technology: "fused", TypicalAccuracy: 4},
		History:       32,
		Observability: hub,
		Overrides: func(string) []core.InstantiateOption {
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return chaos.WrapSource(
						gps.NewReceiver(cid, tr, gps.Config{Seed: seed + 3, ColdStart: time.Second}),
						chaos.WithCorrupt(1, corrupt))
				}),
				core.WithComponentOverride("wifi", func(cid string) core.Component {
					wifiChaos = chaos.WrapSource(wifi.NewSensor(cid, network, tr, time.Second, seed+4))
					return wifiChaos
				}),
			}
		},
		Health:   policy,
		Reroutes: reroutes,
		Rules:    rs,
	})
	if err != nil {
		return err
	}
	defer m.Close()

	s, err := m.GetOrCreate("demo")
	if err != nil {
		return err
	}
	eng := s.Rules()
	eng.OnEvent(func(ev rules.Event) {
		if ev.Reason != "" {
			fmt.Printf("  rule %-16s %-12s (%s)\n", ev.Rule, ev.Type, ev.Reason)
			return
		}
		fmt.Printf("  rule %-16s %s\n", ev.Rule, ev.Type)
	})
	var delivered atomic.Int64
	s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
		return err
	}
	wait := func(what string, cond func() bool) error {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return errors.New("timed out waiting for " + what)
	}
	hasNode := func(id string) bool {
		_, ok := s.Graph().Node(id)
		return ok
	}

	if err := wait("fused positions", func() bool { return delivered.Load() >= 5 }); err != nil {
		return err
	}
	fmt.Printf("fusion delivering (%d positions); degrading GPS accuracy (HDOP -> 9.9)\n", delivered.Load())

	hdop.Store(9.9)
	if err := wait("rule engagement", func() bool {
		return eng.Engaged(insertRule) && eng.Engaged(swapRule) && hasNode(insertNode)
	}); err != nil {
		return err
	}
	fmt.Printf("rules engaged: %s spliced into the live pipeline, delivery rerouted to the WiFi branch\n", insertNode)

	// Ease HDOP into the hysteresis band before the outage: the rules
	// stay latched, but the spliced filter passes fixes again, so the
	// supervisor's GPS fallback has something to deliver.
	hdop.Store(3.0)
	wifiChaos.Kill(nil)
	if err := wait("supervisor arbitration", func() bool {
		return s.Supervisor().Degraded() && !eng.Engaged(swapRule)
	}); err != nil {
		return err
	}
	atOutage := delivered.Load()
	if err := wait("positions during the outage", func() bool {
		return delivered.Load() >= atOutage+5
	}); err != nil {
		return err
	}
	fmt.Println("WiFi outage: supervisor reroute seized the contested edge, swap rule stood down; positions kept flowing")

	hdop.Store(9.9) // accuracy is still bad when the sensor returns
	wifiChaos.Heal()
	if err := wait("re-engagement after the heal", func() bool {
		return !s.Supervisor().Degraded() && eng.Engaged(swapRule)
	}); err != nil {
		return err
	}
	fmt.Println("WiFi healed: supervisor released the edge, swap rule re-engaged on its own")

	hdop.Store(1.0)
	if err := wait("disengagement on the clean signal", func() bool {
		return !eng.Engaged(insertRule) && !eng.Engaged(swapRule) && !hasNode(insertNode)
	}); err != nil {
		return err
	}
	fmt.Println("accuracy recovered: rules disengaged, graph restored")

	_ = s.Stop() // the injected outage leaves expected errors behind
	for _, st := range eng.Status() {
		fmt.Printf("rule %-16s engagements=%d disengagements=%d deferrals=%d rollbacks=%d quarantined=%v\n",
			st.Name, st.Engagements, st.Disengagements, st.Deferrals, st.Rollbacks, st.Quarantined)
	}
	fmt.Printf("self-adaptation demo complete: %d positions total\n", delivered.Load())
	return nil
}

// runRollout is the fleet-adaptation demo: a fleet of live sessions on
// the GPS-only revision of the catalog's upgrade set rolls to the
// fusion revision through the manager's canary → gate → ramp driver,
// while every session keeps delivering positions. With fail=true the
// WiFi branch the upgrade introduces is chaos-killed on arrival: the
// canary cohort's error delta trips the gate, the canaries are migrated
// back, and the fleet ends where it started — the paper's adaptation
// seam driven by observed behavior instead of an operator.
func runRollout(seed int64, fail bool, hub *obs.Metrics) error {
	const fleet = 24
	if hub == nil {
		hub = obs.New() // the gate needs metrics even without -metrics-addr
	}
	b := building.Evaluation()
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1, GridStep: 4})
	set, err := catalog.FusionUpgradeSet(
		catalog.Deps{Building: b, Database: db},
		filter.Config{Particles: 100, Seed: seed + 2})
	if err != nil {
		return err
	}
	tr := trace.CorridorWalk(b, seed, 600, time.Second)

	m, err := runtime.NewManager(runtime.SessionConfig{
		Blueprints:      set,
		InitialRevision: 1,
		Provider:        positioning.ProviderInfo{Technology: "fused", TypicalAccuracy: 4},
		History:         16,
		Observability:   hub,
		Overrides: func(sessionID string) []core.InstantiateOption {
			var i int64
			fmt.Sscanf(sessionID, "target-%d", &i)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed + i + 100, ColdStart: time.Second})
				}),
				// Optional: revision 1 has no wifi slot; the override only
				// binds once a migration instantiates the fusion branch.
				core.WithOptionalOverride("wifi", func(cid string) core.Component {
					sensor := wifi.NewSensor(cid, network, tr, time.Second, seed+i+200)
					if !fail {
						return sensor
					}
					broken := chaos.WrapSource(sensor)
					broken.Kill(nil) // the regression ships with revision 2
					return broken
				}),
			}
		},
	})
	if err != nil {
		return err
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var delivered atomic.Int64
	for i := 0; i < fleet; i++ {
		s, err := m.GetOrCreate(fmt.Sprintf("target-%03d", i))
		if err != nil {
			return err
		}
		s.Provider().Subscribe(func(positioning.Position) { delivered.Add(1) })
		if err := s.Start(ctx, core.WithSourceInterval(5*time.Millisecond)); err != nil {
			return err
		}
	}
	wait := func(what string, cond func() bool) error {
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(2 * time.Millisecond)
		}
		return errors.New("timed out waiting for " + what)
	}
	if err := wait("first positions", func() bool { return delivered.Load() >= fleet }); err != nil {
		return err
	}
	fmt.Printf("fleet live: %d sessions on revision %d (%s)\n", m.Len(), m.ActiveRevision(), set.Name())

	gate := runtime.GateConfig{MaxErrors: 1 << 20}
	if fail {
		gate.MaxErrors = 0 // any canary error on the new branch trips
	}
	rep, err := m.Rollout(ctx, runtime.RolloutConfig{
		To:             2,
		CanaryFraction: 0.25,
		CanaryWindow:   400 * time.Millisecond,
		Gate:           gate,
		Log: func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		},
	})
	rolledBack := errors.Is(err, runtime.ErrRolloutRolledBack)
	if err != nil && !rolledBack {
		return err
	}

	onRev := func(rev int) int {
		n := 0
		for _, id := range m.IDs() {
			if s, ok := m.Get(id); ok && s.Revision() == rev {
				n++
			}
		}
		return n
	}
	fmt.Printf("rollout counters: started=%d completed=%d rolled_back=%d upgraded=%d reverted=%d failed=%d\n",
		hub.RolloutsStarted.Value(), hub.RolloutsCompleted.Value(), hub.RolloutsRolledBack.Value(),
		hub.RolloutUpgraded.Value(), hub.RolloutReverted.Value(), hub.RolloutFailed.Value())

	switch {
	case rolledBack && !fail:
		return fmt.Errorf("unexpected rollback: %s", rep.Reason)
	case !rolledBack && fail:
		return errors.New("broken-branch rollout was not rolled back")
	case rolledBack:
		fmt.Printf("rollout rolled back: %s\n", rep.Reason)
		fmt.Printf("fleet back on revision 1: %d/%d sessions, %d canaries reverted, active revision %d\n",
			onRev(1), m.Len(), rep.Reverted, m.ActiveRevision())
	default:
		fmt.Printf("rollout complete: fleet on revision 2 (%d/%d sessions, %d canaries, 0 dropped)\n",
			onRev(2), m.Len(), rep.Canaries)
	}

	// Either way the fleet must still be serving.
	before := delivered.Load()
	if err := wait("positions after the roll", func() bool { return delivered.Load() >= before+fleet }); err != nil {
		return err
	}
	fmt.Printf("fleet still delivering: %d positions total, %d sessions live\n", delivered.Load(), m.Len())
	return nil
}

func runFusion(seed int64, maxLines int) error {
	g, layer, _, provider, err := eval.BuildFig2(seed)
	if err != nil {
		return err
	}
	defer layer.Close()

	printed := 0
	cancel := provider.Subscribe(func(pos positioning.Position) {
		if maxLines > 0 && printed >= maxLines {
			return
		}
		printed++
		fmt.Println(pos)
	})
	defer cancel()

	_, err = g.Run(0)
	return err
}

func runGPS(seed int64, maxLines int) error {
	b := building.Evaluation()
	tr := trace.Commute(b, seed, 150, 500*time.Millisecond)
	g, layer, sink, err := eval.BuildGPSChannelPipeline(tr, gps.Config{Seed: seed + 1})
	if err != nil {
		return err
	}
	defer layer.Close()
	if _, err := g.Run(0); err != nil {
		return err
	}
	for i, s := range sink.Received() {
		if maxLines > 0 && i >= maxLines {
			break
		}
		fmt.Println(s.Payload.(positioning.Position))
	}
	return nil
}

func runRoomNumber(seed int64, maxLines int) error {
	b := building.Evaluation()
	tr := trace.Commute(b, seed, 150, 500*time.Millisecond)
	network := wifi.DefaultDeployment(b)
	db := wifi.Survey(network, 0, wifi.SurveyConfig{Seed: seed + 1})

	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: seed + 2, ColdStart: 2 * time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		wifi.NewSensor("wifi", network, tr, 2*time.Second, seed+3),
		wifi.NewEngine("positioning", db, b, 3),
		wifi.NewResolver("resolver", b),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			return err
		}
	}

	printed := 0
	app := &core.FuncComponent{
		CompID: "app",
		CompSpec: core.Spec{
			Name: "RoomNumberApp",
			Inputs: []core.PortSpec{
				{Name: "gps", Accepts: []core.Kind{positioning.KindPosition}},
				{Name: "room", Accepts: []core.Kind{positioning.KindRoom}},
			},
		},
		Fn: func(port int, in core.Sample, _ core.Emit) error {
			if maxLines > 0 && printed >= maxLines {
				return nil
			}
			printed++
			switch port {
			case 0:
				fmt.Printf("map point: %v\n", in.Payload.(positioning.Position))
			case 1:
				fmt.Printf("room: %s\n", in.Payload.(string))
			}
			return nil
		},
	}
	if _, err := g.Add(app); err != nil {
		return err
	}
	for _, c := range []struct {
		from, to string
		port     int
	}{
		{"gps", "parser", 0},
		{"parser", "interpreter", 0},
		{"interpreter", "app", 0},
		{"wifi", "positioning", 0},
		{"positioning", "resolver", 0},
		{"resolver", "app", 1},
	} {
		if err := g.Connect(c.from, c.to, c.port); err != nil {
			return err
		}
	}
	_, err := g.Run(0)
	return err
}

// runCluster is the fault-tolerance demo: an n-node session tier
// behind a consistent-hash router, tracking a fleet of targets through
// GPS→Kalman sessions. Mid-run one node is hard-killed — the router's
// breaker trips, the node is declared dead, and every one of its
// sessions is resurrected on a survivor from its last durable
// checkpoint. Then a fresh node joins and the minimal hash range is
// rebalanced onto it via live handoffs. A pipeline definition's
// cluster block (via -config) overrides the demo's probing and handoff
// policy.
func runCluster(n int, victim string, targets int, configPath string, seed int64, hub *obs.Metrics) error {
	if n < 2 {
		return fmt.Errorf("-cluster needs at least 2 nodes, got %d", n)
	}
	if targets <= 0 {
		targets = 60
	}
	if hub == nil {
		hub = obs.New()
	}

	// Demo-paced policy: quick probes so the kill → quarantine → death
	// → failover arc fits in a couple of seconds of transcript.
	pol := cluster.Policy{
		ProbeInterval:        50 * time.Millisecond,
		MaxConsecutiveErrors: 2,
		DeathAfter:           400 * time.Millisecond,
		Retries:              -1,
	}
	ckptEvery := 4
	if configPath != "" {
		f, err := os.Open(configPath)
		if err != nil {
			return err
		}
		p, err := config.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		if p.Cluster != nil {
			pol = p.Cluster.Policy()
			if p.Cluster.Nodes > 0 {
				n = p.Cluster.Nodes
			}
			if p.Cluster.CheckpointEvery != 0 {
				ckptEvery = p.Cluster.CheckpointEvery
			}
		}
	}

	origin := geo.Point{Lat: 56.1629, Lon: 10.2039}
	bp, err := catalog.KalmanBlueprint(geo.NewProjection(origin), 0.5)
	if err != nil {
		return err
	}
	session := runtime.SessionConfig{
		Blueprint:     bp,
		Provider:      positioning.ProviderInfo{Technology: "gps", TypicalAccuracy: 5},
		History:       16,
		Observability: hub,
		Overrides: func(sessionID string) []core.InstantiateOption {
			var i int64
			fmt.Sscanf(sessionID, "tag-%d", &i)
			tr := trace.OutdoorTrack(origin, seed+i, 2, 100, 1.4, time.Second)
			return []core.InstantiateOption{
				core.WithComponentOverride("gps", func(cid string) core.Component {
					return gps.NewReceiver(cid, tr, gps.Config{Seed: seed + i + 100, ColdStart: time.Second, Loop: true})
				}),
			}
		},
	}

	startNode := func(id string) (*cluster.Node, error) {
		dir, err := os.MkdirTemp("", "perpos-cluster-"+id+"-")
		if err != nil {
			return nil, err
		}
		node, err := cluster.StartNode(cluster.NodeConfig{
			ID:              id,
			Dir:             dir,
			Session:         session,
			CheckpointEvery: ckptEvery,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		return node, nil
	}

	router := cluster.NewRouter(cluster.RouterConfig{
		Policy:  pol,
		Metrics: hub,
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	defer router.Close()

	nodes := make(map[string]*cluster.Node)
	defer func() {
		for _, node := range nodes {
			if !node.Down() {
				node.StopPump()
				node.Close()
			}
			os.RemoveAll(node.Dir())
		}
	}()
	for i := 1; i <= n; i++ {
		id := fmt.Sprintf("n%d", i)
		node, err := startNode(id)
		if err != nil {
			return err
		}
		nodes[id] = node
		if err := router.Join(node.Info()); err != nil {
			return err
		}
	}
	router.Start()

	for i := 0; i < targets; i++ {
		if err := router.Track(fmt.Sprintf("tag-%02d", i)); err != nil {
			return err
		}
	}
	for _, node := range nodes {
		node.StartPump(20 * time.Millisecond)
	}
	fmt.Printf("tracking %d targets across %d nodes\n", targets, n)
	time.Sleep(600 * time.Millisecond) // let filters warm and checkpoints land
	printMembers(router)

	// Pick the victim: the flag, or the busiest node.
	if victim == "" {
		for _, m := range router.Members() {
			if victim == "" || m.Sessions > sessionsOf(router, victim) {
				victim = m.ID
			}
		}
	}
	node, ok := nodes[victim]
	if !ok {
		return fmt.Errorf("-node %q: no such node", victim)
	}
	fmt.Printf("\n=== hard-killing %s (%d sessions) ===\n", victim, node.Sessions())
	node.Kill(nil)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if clusterSettledOff(router, victim) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !clusterSettledOff(router, victim) {
		return fmt.Errorf("failover did not settle: %d in flight", router.InFlight())
	}
	fmt.Println("failover complete: every session resumed on a survivor")
	printMembers(router)

	joiner := fmt.Sprintf("n%d", n+1)
	fmt.Printf("\n=== joining fresh node %s ===\n", joiner)
	jn, err := startNode(joiner)
	if err != nil {
		return err
	}
	nodes[joiner] = jn
	if err := router.Join(jn.Info()); err != nil {
		return err
	}
	jn.StartPump(20 * time.Millisecond)
	time.Sleep(300 * time.Millisecond)
	printMembers(router)

	fmt.Println()
	shown := 0
	for _, target := range router.Targets() {
		if shown >= 5 {
			break
		}
		res, err := router.Position(target)
		if err != nil || !res.HasFix {
			continue
		}
		shown++
		fmt.Printf("%s @ %s: %v\n", target, res.Node, res.Pos)
	}
	fmt.Printf("\ncounters: handoffs=%d failed=%d failovers=%d resurrected=%d rebalanced=%d stale_served=%d\n",
		hub.ClusterHandoffs.Value(), hub.ClusterHandoffFailed.Value(),
		hub.ClusterFailovers.Value(), hub.ClusterResurrected.Value(),
		hub.ClusterRebalanced.Value(), hub.ClusterStaleServed.Value())
	return nil
}

// printMembers renders the router's membership table.
func printMembers(router *cluster.Router) {
	fmt.Println("members:")
	for _, m := range router.Members() {
		state := "up"
		if m.Dead {
			state = "dead"
		} else if m.Down {
			state = "down"
		}
		fmt.Printf("  %-4s %-21s %-4s %3d sessions\n", m.ID, m.Addr, state, m.Sessions)
	}
}

// sessionsOf returns the router's session count for one node.
func sessionsOf(router *cluster.Router, id string) int {
	for _, m := range router.Members() {
		if m.ID == id {
			return m.Sessions
		}
	}
	return -1
}

// clusterSettledOff reports whether no route points at the given node
// and no handoff is in flight.
func clusterSettledOff(router *cluster.Router, dead string) bool {
	if router.InFlight() != 0 {
		return false
	}
	for _, target := range router.Targets() {
		node, inFlight, ok := router.NodeOf(target)
		if !ok || inFlight || node == dead {
			return false
		}
	}
	return true
}
