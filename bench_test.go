package perpos_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"perpos/internal/building"
	"perpos/internal/channel"
	"perpos/internal/core"
	"perpos/internal/eval"
	"perpos/internal/filter"
	"perpos/internal/geo"
	"perpos/internal/gps"
	"perpos/internal/nmea"
	"perpos/internal/positioning"
	"perpos/internal/registry"
	"perpos/internal/trace"
	"perpos/internal/transport"
	"perpos/internal/wifi"
)

// The experiment benchmarks regenerate each EXPERIMENTS.md artifact
// once per iteration; run them with -benchtime=1x for a single
// regeneration pass.

func BenchmarkE1RoomNumber(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE1(eval.E1Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2Views(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3DataTree(b *testing.B) {
	// Per-sample cost of running the Fig. 4 pipeline WITH channel
	// reification and tree construction.
	tr := trace.CorridorWalk(building.Evaluation(), 50, 4, time.Second)
	g, layer, _, err := eval.BuildGPSChannelPipeline(tr, gps.Config{Seed: 51})
	if err != nil {
		b.Fatal(err)
	}
	defer layer.Close()
	// Feed synthetic raw sentences straight into the parser path.
	line := mustGGA(b, 56.1629, 10.2039, 8, 1.0)
	sample := core.NewSample(gps.KindRaw, line, time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Inject("gps", sample); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4SatFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE4(eval.E4Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ParticleFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE5(eval.E5Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5ParticleStep(b *testing.B) {
	// Cost of one particle-filter update (predict+weight+resample) at
	// the default population.
	bld := building.Evaluation()
	pf := filter.NewParticleFilter("pf", bld, filter.Config{Particles: 400, Seed: 1})
	at := time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC)
	mk := func(i int) core.Sample {
		pos := positioning.Position{
			Time:     at.Add(time.Duration(i) * time.Second),
			Local:    geo.ENU{East: 20 + float64(i%5), North: 6},
			HasLocal: true,
			Accuracy: 5,
		}
		return core.NewSample(positioning.KindPosition, pos, pos.Time)
	}
	emit := func(core.Sample) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pf.Process(0, mk(i), emit); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6EnTracked(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE6(eval.E6Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7Overhead(b *testing.B) {
	// The sub-benchmarks measure per-sample pipeline cost for each
	// point of the E7 ablation grid.
	for _, features := range []int{0, 1, 4} {
		for _, reify := range []bool{false, true} {
			name := fmt.Sprintf("features=%d/reify=%v", features, reify)
			b.Run(name, func(b *testing.B) {
				g, sink, err := eval.BuildOverheadPipeline(1, features)
				if err != nil {
					b.Fatal(err)
				}
				var layer *channel.Layer
				if reify {
					layer = channel.NewLayer(g)
					defer layer.Close()
				}
				sample := core.NewSample("bench.raw", 1, time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := g.Inject("src", sample); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if sink.Len() < b.N {
					b.Fatalf("sink got %d of %d", sink.Len(), b.N)
				}
			})
		}
	}
}

func BenchmarkE8Resolve(b *testing.B) {
	for _, pool := range []int{0, 100, 1000} {
		b.Run(fmt.Sprintf("pool=%d", pool), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reg := &registry.Registry{}
				for j := 0; j < pool; j++ {
					kind := core.Kind(fmt.Sprintf("noise.%d", j))
					out := core.Kind(fmt.Sprintf("noise.%d.out", j))
					if err := reg.Register(registry.Registration{
						Name: fmt.Sprintf("Noise%d", j),
						Spec: core.Spec{
							Inputs: []core.PortSpec{{Name: "in", Accepts: []core.Kind{kind}}},
							Output: core.OutputSpec{Kind: out},
						},
						New: func(id string) core.Component {
							return core.NewTransform(id, kind, out,
								func(s core.Sample) (core.Sample, bool) { return s, true })
						},
					}); err != nil {
						b.Fatal(err)
					}
				}
				if err := reg.Register(registry.Registration{
					Name: "Parser",
					Spec: gps.NewParser("proto").Spec(),
					New:  func(id string) core.Component { return gps.NewParser(id) },
				}); err != nil {
					b.Fatal(err)
				}
				if err := reg.Register(registry.Registration{
					Name: "Interpreter",
					Spec: gps.NewInterpreter("proto", 0).Spec(),
					New:  func(id string) core.Component { return gps.NewInterpreter(id, 0) },
				}); err != nil {
					b.Fatal(err)
				}

				g := core.New()
				tr := trace.OutdoorTrack(geo.Point{Lat: 56.16, Lon: 10.2}, 1, 1, 50, 1.4, time.Second)
				if _, err := g.Add(gps.NewReceiver("gps", tr, gps.Config{Seed: 1})); err != nil {
					b.Fatal(err)
				}
				if _, err := g.Add(core.NewSink("app", []core.Kind{positioning.KindPosition})); err != nil {
					b.Fatal(err)
				}
				if _, err := reg.Resolve(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- micro-benchmarks on the substrates ---

func BenchmarkNMEAParseGGA(b *testing.B) {
	line := mustGGA(b, 56.1629, 10.2039, 8, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmea.Parse(line); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNMEAFormatGGA(b *testing.B) {
	g := nmea.GGA{Lat: 56.1629, Lon: 10.2039, Quality: nmea.FixGPS, NumSatellites: 8, HDOP: 1.0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nmea.Format(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWiFiLocate(b *testing.B) {
	bld := building.Evaluation()
	n := wifi.DefaultDeployment(bld)
	db := wifi.Survey(n, 0, wifi.SurveyConfig{Seed: 1})
	rng := rand.New(rand.NewSource(2))
	scan := n.ScanAt(geo.ENU{East: 20, North: 6}, 0, time.Time{}, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Locate(scan, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWallCrossing(b *testing.B) {
	bld := building.Evaluation()
	p := geo.ENU{East: 4, North: 6}
	q := geo.ENU{East: 4, North: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld.Crosses(p, q, 0)
	}
}

func BenchmarkGeoDistance(b *testing.B) {
	a := geo.Point{Lat: 56.1629, Lon: 10.2039}
	c := geo.Point{Lat: 55.6761, Lon: 12.5683}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.DistanceTo(c)
	}
}

// mustGGA renders a GGA sentence for benchmark input.
func mustGGA(b *testing.B, lat, lon float64, sats int, hdop float64) string {
	b.Helper()
	line, err := nmea.Format(nmea.GGA{
		Time:          time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC),
		Lat:           lat,
		Lon:           lon,
		Quality:       nmea.FixGPS,
		NumSatellites: sats,
		HDOP:          hdop,
	})
	if err != nil {
		b.Fatal(err)
	}
	return line
}

func BenchmarkE9Transport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE9(eval.E9Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10ParticleAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunE10(eval.E10Config{Particles: []int{100, 400}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransportClassify(b *testing.B) {
	tr := trace.Multimodal(geo.Point{Lat: 56.16, Lon: 10.2}, 1, time.Second)
	g := core.New()
	comps := []core.Component{
		gps.NewReceiver("gps", tr, gps.Config{Seed: 2, ColdStart: time.Second}),
		gps.NewParser("parser"),
		gps.NewInterpreter("interpreter", 0),
		transport.NewSegmenter("segmenter", 30*time.Second),
		transport.NewFeatureExtractor("features"),
		transport.NewClassifier("classifier"),
		transport.NewHMMSmoother("hmm", 0),
	}
	for _, c := range comps {
		if _, err := g.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	sink := core.NewSink("app", []core.Kind{transport.KindMode})
	if _, err := g.Add(sink); err != nil {
		b.Fatal(err)
	}
	order := []string{"gps", "parser", "interpreter", "segmenter", "features", "classifier", "hmm", "app"}
	for i := 0; i < len(order)-1; i++ {
		if err := g.Connect(order[i], order[i+1], 0); err != nil {
			b.Fatal(err)
		}
	}
	line := mustGGA(b, 56.1629, 10.2039, 8, 1.0)
	sample := core.NewSample(gps.KindRaw, line, time.Date(2026, 7, 6, 9, 0, 0, 0, time.UTC))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := g.Inject("gps", sample); err != nil {
			b.Fatal(err)
		}
	}
}
