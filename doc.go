// Package perpos is a Go reproduction of the PerPos translucent
// positioning middleware (Langdal, Schougaard, Kjærgaard, Toftkjær —
// ACM/IFIP/USENIX Middleware 2010).
//
// PerPos serves technology-independent positions like a traditional
// positioning middleware, and additionally reifies the internal
// positioning process — the graph of Processing Components between
// sensors and the application — so developers can inspect and adapt it
// without access to middleware source. See README.md for the layer
// model and internal/... for the implementation:
//
//   - internal/core — Process Structure Layer (components, features,
//     graph, engines)
//   - internal/channel — Process Channel Layer (channels, data trees,
//     channel features)
//   - internal/positioning — Positioning Layer (providers, criteria,
//     notifications, targets)
//   - internal/{gps,wifi,building,nmea,geo,trace} — simulated substrates
//   - internal/{filter,energy} — the paper's case studies (§3.1–3.3)
//   - internal/registry, internal/remote — OSGi / D-OSGi analogues
//   - internal/eval — the experiment harness behind EXPERIMENTS.md
package perpos
